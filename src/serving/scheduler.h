// Continuous-batching online scheduler.
//
// An extension beyond the paper's single-request online protocol: requests queue on arrival
// and join the running batch at iteration boundaries, up to a configurable batch limit —
// the admission discipline of modern LLM serving engines (Orca/vLLM-style continuous
// batching), here layered on top of the offloading engine so expert-cache pressure from
// concurrent requests can be studied. fMoE's per-slot matchers make its policy naturally
// multi-tenant.
//
// Admission itself is pluggable (DESIGN.md §5j): every batch-limit / shed decision goes
// through an AdmissionController. The default open-loop controller reproduces the historical
// fixed-knob behaviour bit for bit; the gradient controller closes the loop on live
// stall-attribution signals (see src/serving/admission.h).
#ifndef FMOE_SRC_SERVING_SCHEDULER_H_
#define FMOE_SRC_SERVING_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/serving/admission.h"
#include "src/serving/engine.h"

namespace fmoe {

struct SchedulerOptions {
  int max_batch_size = 4;   // Concurrent requests in the lockstep batch.
  // Admission order for queued requests: arrival order (FCFS) or shortest remaining
  // generation first (SJF; favours short requests under load, at fairness cost).
  enum class QueueDiscipline { kFcfs, kShortestJobFirst };
  QueueDiscipline discipline = QueueDiscipline::kFcfs;
  // Admission policy + controller knobs. The default (open-loop) replays the legacy
  // scheduler byte-identically.
  AdmissionOptions admission;
};

struct SchedulerStats {
  size_t served_requests = 0;
  uint64_t total_iterations = 0;
  double makespan_sec = 0.0;        // First arrival to last completion.
  double mean_batch_occupancy = 0.0;  // Average active requests per iteration.
  // Admission conservation counters: every request handed to Run is arrived, and leaves the
  // queue exactly once — admitted + rejected == arrived once the run drains (the
  // ControllerBookkeepingConsistent invariant; see admission.h). Open loop never rejects.
  size_t arrived_requests = 0;
  size_t admitted_requests = 0;
  size_t rejected_requests = 0;

  // Output tokens per second of wall-clock over the busy period.
  double Throughput(uint64_t total_tokens) const {
    return makespan_sec > 0.0 ? static_cast<double>(total_tokens) / makespan_sec : 0.0;
  }
};

class ContinuousBatchScheduler {
 public:
  ContinuousBatchScheduler(ServingEngine* engine, const SchedulerOptions& options);
  ~ContinuousBatchScheduler();

  // Serves every request (must be sorted by arrival time) to completion and returns their
  // metrics in completion order; requests the controller sheds are dropped (counted in
  // stats().rejected_requests), so the result may be shorter than the input. Repeatable:
  // internal state resets per call (a fresh controller per Run).
  std::vector<RequestMetrics> Run(const std::vector<Request>& requests);

  const SchedulerStats& stats() const { return stats_; }
  const AdmissionController& controller() const { return *controller_; }

 private:
  // Admits queued requests that have arrived, respecting the controller's batch limit and
  // the queue discipline; sheds arrived requests the controller rejects (removing them from
  // the queue, so a rejecting controller still drains it).
  void AdmitArrived(std::vector<Request>& queue, double now);

  // (Re)creates the controller and attaches it to the engine for closed-loop policies.
  void ResetController();

  ServingEngine* engine_;  // Not owned.
  SchedulerOptions options_;
  SchedulerStats stats_;
  std::unique_ptr<AdmissionController> controller_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_SERVING_SCHEDULER_H_
