#include "src/serving/metrics.h"

#include "src/util/stats.h"

namespace fmoe {

double LatencyBreakdown::TotalSyncOverhead() const {
  double total = 0.0;
  for (double v : sync_overhead) {
    total += v;
  }
  return total;
}

double LatencyBreakdown::PolicyOverlappedSeconds() const {
  double total = 0.0;
  for (double v : async_work) {
    total += v;
  }
  return total;
}

double LatencyBreakdown::TotalIteration() const {
  return attention_compute + expert_compute + demand_stall + layer_overhead +
         TotalSyncOverhead();
}

void LatencyBreakdown::Accumulate(const LatencyBreakdown& other) {
  attention_compute += other.attention_compute;
  expert_compute += other.expert_compute;
  demand_stall += other.demand_stall;
  layer_overhead += other.layer_overhead;
  for (size_t i = 0; i < sync_overhead.size(); ++i) {
    sync_overhead[i] += other.sync_overhead[i];
    async_work[i] += other.async_work[i];
  }
}

void RunMetrics::RecordRequest(const RequestMetrics& request) { requests_.push_back(request); }

void RunMetrics::RecordIteration(double duration, bool is_prefill, uint64_t hits,
                                 uint64_t misses) {
  ++iterations_;
  iteration_records_.push_back(IterationRecord{duration, hits, misses, is_prefill});
  if (is_prefill) {
    prefill_latency_.Add(duration);
  } else {
    decode_latency_.Add(duration);
  }
}

double RunMetrics::HitRate() const {
  const uint64_t total = expert_hits_ + expert_misses_;
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(expert_hits_) / static_cast<double>(total);
}

double RunMetrics::MeanTtft() const {
  std::vector<double> values;
  values.reserve(requests_.size());
  for (const auto& r : requests_) {
    values.push_back(r.Ttft());
  }
  return Mean(values);
}

double RunMetrics::MeanTpot() const {
  std::vector<double> values;
  for (const auto& r : requests_) {
    if (r.decode_iterations > 0) {
      values.push_back(r.Tpot());
    }
  }
  return Mean(values);
}

double RunMetrics::MeanEndToEnd() const {
  std::vector<double> values;
  values.reserve(requests_.size());
  for (const auto& r : requests_) {
    values.push_back(r.EndToEnd());
  }
  return Mean(values);
}

std::vector<double> RunMetrics::EndToEndLatencies() const {
  std::vector<double> values;
  values.reserve(requests_.size());
  for (const auto& r : requests_) {
    values.push_back(r.EndToEnd());
  }
  return values;
}

}  // namespace fmoe
