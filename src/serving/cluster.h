// Simulated multi-replica serving cluster (DESIGN.md §5i).
//
// A cluster is R independent serving engines fed by one arrival trace through a
// RequestRouter. Replicas share nothing at runtime — each owns its policy, cache, and
// virtual clock — which mirrors the shared-nothing scale-out deployments the paper's
// single-node study motivates: per-replica expert caches either replicate the hot set
// (kReplicate) or split one memory budget R ways (kPartition).
//
// Routing policies:
//   * kRoundRobin       — requests cycle through replicas in arrival order. The baseline.
//   * kLeastLoaded      — each request goes to the replica whose virtual clock (completion
//                         time of its last assigned request) is earliest; ties break to the
//                         lowest replica index so routing is deterministic.
//   * kSemanticAffinity — requests hash to replicas by the same semantic LSH signature the
//                         sharded map store uses (kSemanticRouterSeed), so requests from one
//                         semantic cluster land on the replica whose map store and expert
//                         cache already learned that cluster.
//
// Determinism: Route() is a pure function of (options, seed, request order, loads), so a
// cluster run is reproducible bit-for-bit at any replica count.
#ifndef FMOE_SRC_SERVING_CLUSTER_H_
#define FMOE_SRC_SERVING_CLUSTER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/shard_router.h"
#include "src/workload/workload.h"

namespace fmoe {

enum class RouterPolicy {
  kRoundRobin = 0,
  kLeastLoaded = 1,
  kSemanticAffinity = 2,
};

const char* RouterPolicyName(RouterPolicy policy);
// Accepts the RouterPolicyName() spellings ("round-robin", "least-loaded",
// "semantic-affinity"). Returns false (leaving *policy untouched) on anything else.
bool ParseRouterPolicy(const std::string& name, RouterPolicy* policy);

// How per-replica expert caches relate to the single-node memory budget.
enum class ClusterMemoryMode {
  kReplicate = 0,  // Every replica gets the full budget (memory scales with R).
  kPartition = 1,  // The single-node budget is split evenly across replicas.
};

const char* ClusterMemoryModeName(ClusterMemoryMode mode);
bool ParseClusterMemoryMode(const std::string& name, ClusterMemoryMode* mode);

struct ClusterOptions {
  int replicas = 1;
  RouterPolicy router = RouterPolicy::kRoundRobin;
  ClusterMemoryMode memory = ClusterMemoryMode::kReplicate;
};

// Router-visible load state, updated by the harness after each request completes.
struct ReplicaLoad {
  double busy_until = 0.0;  // Virtual completion time of the replica's last request.
  size_t assigned = 0;      // Requests routed to this replica so far.
};

class RequestRouter {
 public:
  RequestRouter(const ClusterOptions& options, uint64_t seed);

  // Picks the replica for `request`. `prompt_embedding` feeds the semantic-affinity hash
  // (may be empty for other policies); `loads` must have one entry per replica.
  int Route(const Request& request, std::span<const double> prompt_embedding,
            std::span<const ReplicaLoad> loads);

  const ClusterOptions& options() const { return options_; }

 private:
  ClusterOptions options_;
  SemanticShardRouter affinity_;
  uint64_t round_robin_next_ = 0;
};

// Per-replica slice of a cluster run, merged into the report JSON.
struct ClusterReplicaStats {
  int replica = 0;
  size_t requests = 0;
  uint64_t iterations = 0;
  double mean_e2e = 0.0;
  double hit_rate = 0.0;
  double busy_until = 0.0;  // Replica makespan: completion time of its last request.
};

struct ClusterSummary {
  int replicas = 1;
  RouterPolicy router = RouterPolicy::kRoundRobin;
  ClusterMemoryMode memory = ClusterMemoryMode::kReplicate;
  double makespan = 0.0;                 // max over replicas of busy_until.
  double aggregate_throughput_rps = 0.0; // Completed requests / makespan.
  std::vector<ClusterReplicaStats> replica_stats;
};

}  // namespace fmoe

#endif  // FMOE_SRC_SERVING_CLUSTER_H_
