// Virtual-time MoE serving engine.
//
// The engine executes the prefill + decode loop of the paper's §2.1 against the memsim
// hardware model: per layer it advances time by the attention cost, evaluates the (simulated)
// gate, invokes the offload policy's hooks, then serves every activated expert — a hit when its
// weights are resident and ready, otherwise an on-demand load over the expert's device link
// that stalls the iteration (§3.2 step 4). All five systems in the evaluation run on this one
// mechanism and differ only in the OffloadPolicy implementation and cache eviction algorithm.
#ifndef FMOE_SRC_SERVING_ENGINE_H_
#define FMOE_SRC_SERVING_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cache/expert_cache.h"
#include "src/cache/tiered_store.h"
#include "src/memsim/clock.h"
#include "src/memsim/gpu.h"
#include "src/moe/cost_model.h"
#include "src/moe/embedding.h"
#include "src/moe/gate_simulator.h"
#include "src/moe/model_config.h"
#include "src/obs/control_signals.h"
#include "src/obs/trace_recorder.h"
#include "src/oracle/gate_recorder.h"
#include "src/serving/admission.h"
#include "src/serving/deferred.h"
#include "src/serving/metrics.h"
#include "src/serving/policy.h"
#include "src/workload/workload.h"

namespace fmoe {

struct EngineConfig {
  int prefetch_distance = 3;          // d, profiled to 3 in the paper (§6.1).
  uint64_t expert_cache_bytes = 0;    // Expert-cache budget; 0 = all experts fit.
  std::string cache_policy = "LFU";   // Eviction algorithm name (see eviction_policy.h).
  bool preload_all = false;           // No-offload reference: all experts resident from t=0.
  double frequency_decay = 0.6;       // Per-iteration aging of cache hit frequencies.
  int gpu_count = 6;                  // Paper testbed: six RTX 3090s.
  // Expert-to-device placement; the paper uses round-robin over a hash map (§5).
  PlacementStrategy placement = PlacementStrategy::kRoundRobin;
  GpuConfig gpu;
  HardwareProfile hardware;
  GateProfile gate;
  EmbedderProfile embedder;
  uint64_t seed = 1;
  // Pub-sub matcher-worker model (§4.3): published async jobs complete `scale * cost` after
  // the worker picks them up. 0 reproduces the historical instantaneous semantics exactly
  // (jobs apply inline at publish time); 1 models a matcher running at CostModel speed.
  double matcher_latency_scale = 0.0;
  // Bound on pending deferred jobs; past it the oldest pending job is dropped.
  int matcher_queue_depth = 32;
  // Multi-tier offload hierarchy (GPU ↔ host pool ↔ NVMe). Disabled by default; the default
  // TierConfig replays the legacy two-tier path bit-identically (DESIGN.md §5h).
  TierConfig tier;
  // Optional virtual-time trace recorder (not owned; must outlive the engine). A pure
  // observer: attaching one changes no timing, metrics, or policy decisions (DESIGN.md §5f).
  TraceRecorder* trace = nullptr;
  // Prepended to every registered track name ("replica1/engine", ...). The cluster harness
  // sets it per replica so one recorder's track table names which engine owns each timeline;
  // empty (default) keeps single-engine track names byte-identical to the §5f goldens.
  std::string trace_track_prefix;
};

class ServingEngine : public EngineHandle {
 public:
  ServingEngine(const ModelConfig& model, const EngineConfig& config, OffloadPolicy* policy);

  // Serves one request to completion (batch of one). Advances the clock to the request's
  // arrival time first if the engine is idle before it.
  RequestMetrics ServeRequest(const Request& request);

  // Serves up to EngineConfig-independent batch: all requests run in lockstep iterations
  // (members that finish drop out). Used by the batch-size sensitivity experiment.
  std::vector<RequestMetrics> ServeBatch(std::span<const Request> requests);

  // Runs requests purely to build policy history / warm the cache, then discards the metrics.
  void WarmupWithHistory(std::span<const Request> requests);

  // Continuous-batching interface: requests may join the running batch at iteration
  // boundaries (what modern serving engines call continuous batching). AdmitRequest copies
  // the request and calls the policy's admission hook; StepIteration runs one lockstep
  // iteration over everyone currently active (members sit at *different* token positions);
  // DrainCompleted returns and clears the metrics of finished requests.
  // ServeBatch/ServeRequest are implemented on top of this machinery.
  void AdmitRequest(const Request& request);
  bool StepIteration();  // false when no requests are active.
  std::vector<RequestMetrics> DrainCompleted();
  size_t ActiveRequests() const { return active_members_.size(); }
  // Lets schedulers move idle time forward to the next arrival. Deferred jobs whose modeled
  // completion falls inside the idle gap apply once time catches up to them.
  void AdvanceClockTo(double t) {
    clock_.AdvanceTo(t);
    DrainDeferred();
  }

  RunMetrics& metrics() { return metrics_; }
  const RunMetrics& metrics() const { return metrics_; }
  // Also clears the attached trace and live signal window so the recorded events, the stall
  // attribution, and controller inputs cover exactly the window the metrics describe (warmup
  // runs are discarded from all of them).
  void ResetMetrics() {
    metrics_ = RunMetrics();
    if (trace_ != nullptr) {
      trace_->ClearEvents();
    }
    if (signals_ != nullptr) {
      signals_->Clear();
      signal_machine_.ResetAttribution();
    }
    if (oracle_ != nullptr) {
      oracle_->Clear(clock_.now());
    }
  }

  // --- Control plane (DESIGN.md §5j). Both default to detached: every hook below is a
  // single null-pointer check and the engine replays the legacy path byte-identically. ---

  // Attaches a live control-signal tracker: demand stalls (classified by the engine's own
  // StallStateMachine, independent of any trace), admission queueing delays, and iteration
  // durations are recorded into it in virtual time.
  void SetControlSignals(ControlSignalTracker* signals) {
    signals_ = signals;
    cache_.set_stall_observer(signals != nullptr ? &signal_machine_ : nullptr);
  }
  // Attaches an admission controller: the engine feeds its signal tracker and pulls the
  // effective prefetch distance from it at every iteration boundary. The batch-limit and
  // shedding halves of the interface are consumed by the scheduler / cluster harness.
  void SetAdmissionController(AdmissionController* controller) {
    admission_ = controller;
    SetControlSignals(controller != nullptr ? controller->signals() : nullptr);
    if (controller == nullptr) {
      prefetch_distance_override_ = 0;
    }
  }
  // The engine-side stall attribution mirror (live path; bitwise-equal totals to an attached
  // trace when both observe the same run).
  const StallAttribution& signal_stall() const { return signal_machine_.stall(); }

  // Attaches a gate-decision recorder for the clairvoyant oracle (DESIGN.md §5k). Pure
  // observer with the same contract as tracing: every hook is a single null-pointer check
  // and recording changes no timing, metrics, or policy decisions. ResetMetrics clears the
  // tape so it covers exactly the measured window.
  void SetOracleRecorder(GateDecisionRecorder* oracle) { oracle_ = oracle; }

  const ExpertCache& cache() const { return cache_; }
  const TieredExpertStore& store() const { return store_; }
  const GpuCluster& cluster() const { return cluster_; }
  const GateSimulator& gate() const { return gate_; }
  const SemanticEmbedder& embedder() const { return embedder_; }
  const CostModel& cost_model() const { return cost_; }
  const EngineConfig& config() const { return config_; }

  // EngineHandle interface (policy-facing services).
  const ModelConfig& model() const override { return model_; }
  double now() const override { return clock_.now(); }
  // Closed-loop controllers may raise the effective distance at iteration boundaries
  // (override 0 = none = the configured value, the legacy behaviour).
  int prefetch_distance() const override {
    return prefetch_distance_override_ > 0 ? prefetch_distance_override_
                                           : config_.prefetch_distance;
  }
  void PrefetchAsync(ExpertId id, double probability, double priority) override;
  void PrefetchAsyncSized(ExpertId id, double probability, double priority,
                          double size_fraction) override;
  void StageToHostAsync(ExpertId id, double probability) override;
  void BlockingLoad(ExpertId id, double probability) override;
  bool IsCached(ExpertId id) const override;
  void SetCachedProbability(ExpertId id, double probability) override;
  std::vector<double> SpeculativeGate(const RequestRouting& routing, int iteration,
                                      int target_layer, int distance) const override;
  TraceRecorder* trace() const override { return trace_; }
  void AddOverhead(OverheadCategory category, double seconds) override;
  void AddAsyncWork(OverheadCategory category, double seconds) override;
  uint64_t PublishDeferred(OverheadCategory category, PublishMode mode, double cost_seconds,
                           uint64_t topic, DeferredApply apply) override;

  // Deferred-pipeline introspection (tests and invariant checks).
  size_t PendingDeferredJobs() const { return matcher_.pending(); }
  const MatcherWorker& matcher() const { return matcher_; }
  // Every queued-transfer tag maps to a resident entry carrying that tag, and vice versa.
  bool TransferTagsConsistent() const;
  // Chain / direct-path bookkeeping cross-checks for the tiered store (fuzz tests): every
  // chained prefetch references a live GPU transfer tag, the chain maps are mutual inverses,
  // and the store's own stage bookkeeping is consistent.
  bool TierBookkeepingConsistent() const;

 private:
  struct BatchMember {
    Request request;  // Owned copy; contexts point at it.
    IterationContext context;
    RequestMetrics metrics;
    int next_iteration = 0;    // 0 = prefill not yet run.
    int total_iterations = 0;  // 1 prefill + decode_tokens decode iterations.
  };

  // One lockstep iteration over the active members, each at its own token position.
  // Returns iteration duration.
  double RunIteration(std::vector<BatchMember*>& active);

  // Serving an activated expert is split in two so one layer's demand transfers overlap
  // across device links: IssueExpert classifies hit/miss and starts any needed transfer
  // (pinning residents); CompleteExpert waits out the transfer and advances compute time.
  struct ExpertJob {
    ExpertId id;
    int tokens_routed = 0;
    double ready_at = 0.0;
    bool hit = false;
    bool resident = false;
    // Stall cause classified at issue time (tracing only; meaningless for hits).
    StallClass stall_class = StallClass::kNeverPrefetched;
    // Tier that served a miss's bytes (tracing only; legacy two-tier misses read "host").
    TieredExpertStore::Tier tier_source = TieredExpertStore::Tier::kHost;
  };
  ExpertJob IssueExpert(ExpertId id, int tokens_routed);
  void CompleteExpert(const ExpertJob& job);

  // Demand-path helpers shared by IssueExpert and BlockingLoad. Legacy two-tier behaviour
  // (store disabled) is bit-identical to the pre-tiering code; tiered mode routes the fill
  // through host staging / the NVMe link and reports the serving tier.
  double DemandFillMiss(uint64_t key, PcieLink& link, TieredExpertStore::Tier* source);
  double PromoteQueuedToDemand(EntryRef& entry, uint64_t key, PcieLink& link,
                               TieredExpertStore::Tier* source);

  // Completion bookkeeping shared by prefetch start events.
  void OnTransferScheduled(int device, uint64_t tag, double completion_time);

  uint64_t KeyOf(ExpertId id) const { return model_.FlatIndex(id); }
  PcieLink& LinkFor(uint64_t key) { return cluster_.DeviceFor(key).link(); }

  // Removes victims' GPU allocations and cancels their queued transfers.
  void CleanupEvicted(const std::vector<CacheEntry>& evicted);

  // Applies every deferred job whose modeled completion time has been reached (layer
  // boundaries and idle advances are the subscription points of the pub-sub pipeline).
  void DrainDeferred();

  // Releases prefetch pins whose target layer has completed (layer == -1: release all).
  void ReleasePrefetchPins(int completed_layer);

  void PreloadAllExperts();

  // Lazily registers (and returns) the trace track for a batch slot's request lifecycle.
  int TraceSlotTrack(int slot);

  ModelConfig model_;
  EngineConfig config_;
  OffloadPolicy* policy_;  // Not owned.
  GateSimulator gate_;
  SemanticEmbedder embedder_;
  CostModel cost_;
  GpuCluster cluster_;
  std::unique_ptr<EvictionPolicy> eviction_policy_;
  TieredExpertStore store_;
  ExpertCache& cache_;  // GPU tier of store_; the legacy name every code path uses.
  SimClock clock_;
  RunMetrics metrics_;
  MatcherWorker matcher_;

  // Tracing (null trace_ = disabled; every hook is a single pointer check).
  TraceRecorder* trace_ = nullptr;  // Not owned.
  int trace_engine_track_ = 0;
  std::vector<int> trace_slot_tracks_;  // batch_slot -> track id, registered lazily.

  // Live control-plane feed (null signals_ = detached; same single-pointer-check contract as
  // tracing). signal_machine_ is the engine's own per-key classifier so the live path never
  // consumes the trace recorder's classification marks.
  ControlSignalTracker* signals_ = nullptr;  // Not owned.
  StallStateMachine signal_machine_;
  AdmissionController* admission_ = nullptr;  // Not owned.
  int prefetch_distance_override_ = 0;        // 0 = use config_.prefetch_distance.

  // Clairvoyant-oracle tape (null = disabled; same single-pointer-check contract).
  GateDecisionRecorder* oracle_ = nullptr;  // Not owned.

  // Continuous-batching state.
  std::vector<std::unique_ptr<BatchMember>> active_members_;
  std::vector<RequestMetrics> completed_;
  std::set<int> free_slots_;
  int next_slot_ = 0;

  uint64_t next_transfer_tag_ = 1;
  // tag -> flat expert key for prefetch-start callbacks.
  std::unordered_map<uint64_t, uint64_t> transfer_key_by_tag_;

  // Tiered-store chain bookkeeping (empty while the store is disabled). A chained prefetch
  // is a GPU fill whose host→GPU hop waits for an NVMe→host staging transfer: the hop is
  // enqueued by the stage-scheduled hook once the staging's completion instant is known.
  struct ChainedPrefetch {
    uint64_t key = 0;
    uint64_t gpu_tag = 0;
    uint64_t bytes = 0;
  };
  std::unordered_map<uint64_t, ChainedPrefetch> chains_by_stage_tag_;
  std::unordered_map<uint64_t, uint64_t> stage_tag_by_gpu_tag_;  // Inverse of the above.
  // GPU transfer tags riding the explicit NVMe→GPU direct path (their transfers live on the
  // store's NVMe link, not the device's PCIe link).
  std::unordered_set<uint64_t> direct_tags_;
  // Prefetched-but-not-yet-used experts are pinned (the runtime holds a reference to the
  // inbound buffer) and released when their target layer completes or the iteration ends.
  // Bucketed by target layer so releases touch only the completed layers' keys; a key appears
  // at most once (resident keys never re-prefetch while pinned).
  std::vector<std::vector<uint64_t>> prefetch_pinned_by_layer_;
  size_t prefetch_pinned_count_ = 0;

  // Iteration scratch buffers, reused across layers and iterations so the steady-state decode
  // loop performs no heap allocation. layer_probs_[member][layer] doubles as the per-member
  // gate-output history handed to OnIterationEnd.
  std::vector<std::vector<std::vector<double>>> layer_probs_;
  std::vector<int> tokens_by_expert_;  // Dense per-layer token counts, indexed by expert.
  std::vector<int> activated_;
  std::vector<size_t> top_scratch_;
  std::vector<ExpertJob> jobs_;
  std::vector<CacheEntry> evicted_scratch_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_SERVING_ENGINE_H_
