// Metric accounting for serving runs: TTFT/TPOT per request, expert hit rates, and the
// per-iteration latency breakdown reported in Fig. 15.
#ifndef FMOE_SRC_SERVING_METRICS_H_
#define FMOE_SRC_SERVING_METRICS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/serving/deferred.h"
#include "src/serving/policy.h"
#include "src/util/histogram.h"

namespace fmoe {

struct RequestMetrics {
  uint64_t request_id = 0;
  double arrival_time = 0.0;
  double start_time = 0.0;    // When the engine began the prefill.
  double first_token_time = 0.0;
  double completion_time = 0.0;
  int decode_iterations = 0;

  // TTFT measures serving latency (prefill), excluding queueing delay; end-to-end latency
  // (the online-serving metric) includes it.
  double Ttft() const { return first_token_time - start_time; }
  double QueueingDelay() const { return start_time - arrival_time; }
  // Time-per-output-token over the decode phase.
  double Tpot() const {
    if (decode_iterations == 0) {
      return 0.0;
    }
    return (completion_time - first_token_time) / static_cast<double>(decode_iterations);
  }
  double EndToEnd() const { return completion_time - arrival_time; }
};

// Latency components of iterations, summed over a run.
struct LatencyBreakdown {
  double attention_compute = 0.0;
  double expert_compute = 0.0;
  double demand_stall = 0.0;  // On-demand loading + waiting for in-flight prefetches.
  double layer_overhead = 0.0;
  std::array<double, static_cast<size_t>(OverheadCategory::kCount)> sync_overhead = {};
  std::array<double, static_cast<size_t>(OverheadCategory::kCount)> async_work = {};

  double TotalSyncOverhead() const;
  double TotalIteration() const;  // Everything that extends the iteration.

  // Policy-overhead split (Fig. 15): seconds of policy work that extended iterations versus
  // seconds that ran on the background matcher worker, overlapped with forward compute.
  double PolicyCriticalPathSeconds() const { return TotalSyncOverhead(); }
  double PolicyOverlappedSeconds() const;

  void Accumulate(const LatencyBreakdown& other);
};

// Per-iteration sample retained for correlation analyses (Fig. 8) and breakdowns.
struct IterationRecord {
  double duration = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  bool is_prefill = false;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class RunMetrics {
 public:
  void RecordRequest(const RequestMetrics& request);
  void RecordHit() { ++expert_hits_; }
  void RecordMiss() { ++expert_misses_; }
  // Hit served from a reduced-precision copy (mixed-precision extension).
  void RecordLowPrecisionHit() { ++low_precision_hits_; }
  void RecordIteration(double duration, bool is_prefill, uint64_t hits, uint64_t misses);
  LatencyBreakdown& breakdown() { return breakdown_; }
  const LatencyBreakdown& breakdown() const { return breakdown_; }
  DeferredPipelineStats& deferred() { return deferred_; }
  const DeferredPipelineStats& deferred() const { return deferred_; }

  const std::vector<RequestMetrics>& requests() const { return requests_; }
  uint64_t expert_hits() const { return expert_hits_; }
  uint64_t expert_misses() const { return expert_misses_; }
  uint64_t low_precision_hits() const { return low_precision_hits_; }
  // Fraction of expert servings that used a reduced-precision copy (a quality-cost proxy).
  double LowPrecisionShare() const {
    const uint64_t total = expert_hits_ + expert_misses_;
    return total == 0 ? 0.0 : static_cast<double>(low_precision_hits_) /
                                  static_cast<double>(total);
  }
  uint64_t iterations() const { return iterations_; }

  double HitRate() const;
  double MeanTtft() const;
  double MeanTpot() const;
  double MeanEndToEnd() const;
  std::vector<double> EndToEndLatencies() const;

  const LatencyHistogram& decode_iteration_latency() const { return decode_latency_; }
  const LatencyHistogram& prefill_latency() const { return prefill_latency_; }
  const std::vector<IterationRecord>& iteration_records() const { return iteration_records_; }

 private:
  std::vector<RequestMetrics> requests_;
  std::vector<IterationRecord> iteration_records_;
  uint64_t expert_hits_ = 0;
  uint64_t expert_misses_ = 0;
  uint64_t low_precision_hits_ = 0;
  uint64_t iterations_ = 0;
  LatencyBreakdown breakdown_;
  DeferredPipelineStats deferred_;
  LatencyHistogram decode_latency_{1e-6, 1e3, 64};
  LatencyHistogram prefill_latency_{1e-6, 1e3, 64};
};

}  // namespace fmoe

#endif  // FMOE_SRC_SERVING_METRICS_H_
