// Modeled background matcher worker for the asynchronous pub-sub pipeline (§4.3).
//
// Policies publish match/prefetch jobs (PublishDeferred in policy.h); this worker schedules
// them on a serial background timeline: a job published at time t with modeled cost c starts
// when the worker frees up and completes `latency_scale * c` later. The serving engine drains
// completed jobs at layer boundaries and applies their commands there — so matcher latency
// delays *when prefetch decisions reach the links* without ever extending the iteration, and
// a slow matcher (large scale, deep backlog) starves its own prefetch lead time exactly the
// way the paper's decoupled matcher can.
//
// Pub-sub staleness: jobs carry a topic; publishing to a topic with a still-pending job drops
// the older one (a newer gate observation supersedes the stale decision). The pending queue
// is bounded: past `queue_depth`, the oldest pending job is dropped. Superseded/dropped work
// stays charged to the async-work accounting — the matcher did the work, the system just
// never used the result.
//
// With latency_scale == 0 nothing is ever queued (Publish reports completion == publish time
// and the engine applies inline), reproducing the pre-pub-sub synchronous semantics exactly —
// the equivalence the replay and golden-metrics tests pin.
#ifndef FMOE_SRC_SERVING_DEFERRED_H_
#define FMOE_SRC_SERVING_DEFERRED_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/memsim/event_queue.h"
#include "src/serving/policy.h"

namespace fmoe {

class TraceRecorder;

// One scheduled deferred job. publish/start/completion describe the worker timeline:
// start = max(publish_time, worker free), completion = start + latency_scale * cost.
struct DeferredJob {
  uint64_t seq = 0;
  uint64_t topic = 0;
  OverheadCategory category = OverheadCategory::kMapMatching;
  double cost_seconds = 0.0;
  double publish_time = 0.0;
  double start_time = 0.0;
  double completion_time = 0.0;
  DeferredApply apply;
};

// Counters for the pub-sub pipeline, reported next to the latency breakdown. `published`
// partitions into applied + superseded + dropped + blocking + still-pending.
struct DeferredPipelineStats {
  uint64_t published = 0;   // All PublishDeferred calls.
  uint64_t applied = 0;     // Commands reached the engine (inline or after deferral).
  uint64_t superseded = 0;  // Replaced by a newer job on the same topic before completing.
  uint64_t dropped = 0;     // Evicted from a full queue (oldest first).
  uint64_t blocking = 0;    // kBlocking publishes (synchronous critical-path decisions).

  double modeled_work_s = 0.0;   // Total published async cost (== async work charged).
  double overlapped_s = 0.0;     // Cost of applied async jobs: ran concurrently with compute.
  double wasted_work_s = 0.0;    // Cost of superseded + dropped jobs (computed, never used).
  double queue_wait_s = 0.0;     // Applied jobs: time spent waiting for the worker.
  double decision_latency_s = 0.0;  // Applied jobs: publish -> completion.

  // Saturating: jobs published before a metrics reset may resolve after it.
  uint64_t Pending() const {
    const uint64_t resolved = applied + superseded + dropped + blocking;
    return resolved >= published ? 0 : published - resolved;
  }
  void Accumulate(const DeferredPipelineStats& other);
};

class MatcherWorker {
 public:
  // `latency_scale` multiplies every published cost (0 = instantaneous, the synchronous
  // semantics); `queue_depth` bounds pending jobs (>= 1).
  MatcherWorker(double latency_scale, int queue_depth);

  // True when every publish completes at its publish instant (callers apply inline).
  bool synchronous() const { return latency_scale_ == 0.0; }

  double latency_scale() const { return latency_scale_; }
  size_t pending() const { return queue_.size(); }
  double worker_free_at() const { return worker_free_at_; }

  // Attaches a trace recorder (pure observer). Each scheduled job becomes a span on `track`
  // covering its modeled worker occupancy; supersessions and depth drops become instants.
  void set_trace(TraceRecorder* trace, int track) {
    trace_ = trace;
    trace_track_ = track;
  }

  // Schedules a job published at `now` and returns its queue sequence number. Appends any
  // superseded/depth-dropped victims to `*victims` (never null) so the caller can account
  // their wasted work. Must not be called when synchronous().
  uint64_t Publish(double now, DeferredJob job, std::vector<DeferredJob>* victims);

  // Pops the earliest job with completion_time <= now, in (completion, publish seq) order.
  bool PopDue(double now, DeferredJob* out);

  // Earliest pending completion time; false when idle.
  bool PeekNextDue(double* due) { return queue_.PeekNextDue(due); }

 private:
  double latency_scale_;
  int queue_depth_;
  TraceRecorder* trace_ = nullptr;  // Not owned; null = tracing disabled.
  int trace_track_ = 0;
  double worker_free_at_ = 0.0;
  EventQueue<DeferredJob> queue_;
  // topic -> pending queue seq, for supersession. Entries are erased on pop/cancel.
  std::unordered_map<uint64_t, uint64_t> pending_topic_;
  // queue seq -> topic, to clean pending_topic_ when a depth-drop evicts a topical job.
  std::unordered_map<uint64_t, uint64_t> topic_of_seq_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_SERVING_DEFERRED_H_
