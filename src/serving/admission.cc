#include "src/serving/admission.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace fmoe {

bool ParseAdmissionPolicy(const std::string& name, AdmissionPolicyKind* kind) {
  if (name == "open-loop") {
    *kind = AdmissionPolicyKind::kOpenLoop;
    return true;
  }
  if (name == "gradient") {
    *kind = AdmissionPolicyKind::kGradient;
    return true;
  }
  return false;
}

const char* AdmissionPolicyName(AdmissionPolicyKind kind) {
  switch (kind) {
    case AdmissionPolicyKind::kOpenLoop:
      return "open-loop";
    case AdmissionPolicyKind::kGradient:
      return "gradient";
    default:
      return "unknown";
  }
}

GradientAdmissionController::GradientAdmissionController(const AdmissionOptions& options)
    : AdmissionController(options), batch_limit_(-1.0) {
  FMOE_CHECK(options.min_batch >= 1);
  FMOE_CHECK(options.gain > 0.0 && options.gain < 1.0);
  FMOE_CHECK(options.shed_fraction > 0.0 && options.shed_fraction <= 1.0);
  FMOE_CHECK(options.update_period_sec >= 0.0);
}

void GradientAdmissionController::BeginAdmission(double now) {
  // Bounded cadence: at most one control update per update_period_sec of virtual time, so
  // the number of controller actions is a function of the trace, not of how often the
  // scheduler polls.
  if (updated_once_ && now - last_update_ < options_.update_period_sec) {
    return;
  }
  updated_once_ = true;
  last_update_ = now;
  ++control_updates_;
  const ControlSignals s = signals_.Sample(now);

  // AIMD on the batch limit. Thrash (prefetched experts evicted before first use) means the
  // concurrent working sets overflow the expert cache: halve-ish the batch. A healthy window
  // earns one additive step back toward (and past, until clamped) the configured limit.
  if (batch_limit_ >= 0.0) {
    if (s.stalls > 0 && s.cache_thrash_ratio > options_.thrash_threshold) {
      batch_limit_ = std::max(static_cast<double>(options_.min_batch),
                              batch_limit_ * (1.0 - options_.gain));
    } else {
      batch_limit_ += options_.gain;
    }
  }

  // Prefetch-distance control: when in-flight stall dominates, prefetches are issued but too
  // late — give the policy more lead layers. Decay the boost when the pressure is gone.
  // Anti-windup: never integrate past the distance clamp, or sustained pressure would make
  // the boost take arbitrarily many quiet windows to decay back to zero.
  if (s.stalls > 0 && s.inflight_share > options_.inflight_threshold) {
    distance_boost_ = std::min(distance_boost_ + 1, options_.max_prefetch_distance);
  } else if (distance_boost_ > 0) {
    --distance_boost_;
  }
}

int GradientAdmissionController::BatchLimit(int configured_max, double /*now*/) {
  if (batch_limit_ < 0.0) {
    batch_limit_ = static_cast<double>(configured_max);  // First query seeds the AIMD state.
  }
  batch_limit_ = std::min(batch_limit_, static_cast<double>(configured_max));
  const int limit = static_cast<int>(std::floor(batch_limit_));
  return std::clamp(limit, options_.min_batch, configured_max);
}

bool GradientAdmissionController::ShouldReject(const Request& request, double now) {
  if (options_.slo_sec <= 0.0) {
    return false;
  }
  // Wait-budget shedding: once queueing alone has eaten shed_fraction of the SLO, service
  // time on top of it would breach — reject now instead of serving a doomed request.
  const double waited = now - request.arrival_time;
  return waited > options_.slo_sec * options_.shed_fraction;
}

int GradientAdmissionController::PrefetchDistance(int configured, double /*now*/) {
  return std::min(configured + distance_boost_, std::max(configured,
                                                         options_.max_prefetch_distance));
}

std::unique_ptr<AdmissionController> MakeAdmissionController(const AdmissionOptions& options) {
  switch (options.policy) {
    case AdmissionPolicyKind::kGradient:
      return std::make_unique<GradientAdmissionController>(options);
    case AdmissionPolicyKind::kOpenLoop:
    default:
      return std::make_unique<OpenLoopAdmissionController>(options);
  }
}

}  // namespace fmoe
