#include "src/serving/deferred.h"

#include <algorithm>
#include <utility>

#include "src/obs/trace_recorder.h"
#include "src/util/logging.h"

namespace fmoe {

void DeferredPipelineStats::Accumulate(const DeferredPipelineStats& other) {
  published += other.published;
  applied += other.applied;
  superseded += other.superseded;
  dropped += other.dropped;
  blocking += other.blocking;
  modeled_work_s += other.modeled_work_s;
  overlapped_s += other.overlapped_s;
  wasted_work_s += other.wasted_work_s;
  queue_wait_s += other.queue_wait_s;
  decision_latency_s += other.decision_latency_s;
}

MatcherWorker::MatcherWorker(double latency_scale, int queue_depth)
    : latency_scale_(latency_scale), queue_depth_(queue_depth) {
  FMOE_CHECK_MSG(latency_scale >= 0.0, "negative matcher_latency_scale " << latency_scale);
  FMOE_CHECK_MSG(queue_depth >= 1, "matcher_queue_depth must be >= 1, got " << queue_depth);
}

uint64_t MatcherWorker::Publish(double now, DeferredJob job, std::vector<DeferredJob>* victims) {
  FMOE_CHECK(!synchronous());
  FMOE_CHECK(victims != nullptr);
  // A newer observation supersedes the pending job on the same topic (§4.3 staleness rule).
  if (job.topic != 0) {
    const auto it = pending_topic_.find(job.topic);
    if (it != pending_topic_.end()) {
      DeferredJob stale;
      if (queue_.Cancel(it->second, &stale)) {
        topic_of_seq_.erase(stale.seq);
        if (trace_) {
          trace_->Instant(trace_track_, "superseded", "matcher", now,
                          {TraceArg::Uint("topic", stale.topic),
                           TraceArg::Num("wasted_s", stale.cost_seconds)});
        }
        victims->push_back(std::move(stale));
      }
      pending_topic_.erase(it);
    }
  }
  // Bounded queue: evict the stalest pending job to make room.
  while (queue_.size() >= static_cast<size_t>(queue_depth_)) {
    DeferredJob oldest;
    if (!queue_.CancelOldest(&oldest)) {
      break;
    }
    const auto topic_it = topic_of_seq_.find(oldest.seq);
    if (topic_it != topic_of_seq_.end()) {
      pending_topic_.erase(topic_it->second);
      topic_of_seq_.erase(topic_it);
    }
    if (trace_) {
      trace_->Instant(trace_track_, "dropped", "matcher", now,
                      {TraceArg::Uint("topic", oldest.topic),
                       TraceArg::Num("wasted_s", oldest.cost_seconds)});
    }
    victims->push_back(std::move(oldest));
  }

  job.publish_time = now;
  job.start_time = std::max(now, worker_free_at_);
  job.completion_time = job.start_time + latency_scale_ * job.cost_seconds;
  worker_free_at_ = job.completion_time;
  job.seq = queue_.Push(job.completion_time, job);
  // The payload's own seq field lags the assigned one by construction; patch bookkeeping off
  // the returned value (PopDue reports the queue's seq, not the payload copy's).
  if (job.topic != 0) {
    pending_topic_[job.topic] = job.seq;
    topic_of_seq_[job.seq] = job.topic;
  }
  if (trace_) {
    // The span covers the worker's modeled occupancy, not the queue wait — "match-job", not
    // the overhead-category name, so it never collides with the engine's sync-overhead spans.
    trace_->Span(trace_track_, "match-job", "matcher", job.start_time, job.completion_time,
                 {TraceArg::Uint("seq", job.seq), TraceArg::Uint("topic", job.topic),
                  TraceArg::Str("category", OverheadCategoryName(job.category)),
                  TraceArg::Num("queued_s", job.start_time - job.publish_time)});
    trace_->Counter(trace_track_, "matcher.pending", now, static_cast<double>(queue_.size()));
  }
  return job.seq;
}

bool MatcherWorker::PopDue(double now, DeferredJob* out) {
  EventQueue<DeferredJob>::Event event;
  if (!queue_.PopDue(now, &event)) {
    return false;
  }
  *out = std::move(event.payload);
  out->seq = event.seq;
  const auto topic_it = topic_of_seq_.find(event.seq);
  if (topic_it != topic_of_seq_.end()) {
    pending_topic_.erase(topic_it->second);
    topic_of_seq_.erase(topic_it);
  }
  if (trace_) {
    trace_->Counter(trace_track_, "matcher.pending", now, static_cast<double>(queue_.size()));
  }
  return true;
}

}  // namespace fmoe
