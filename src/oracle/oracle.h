// Clairvoyant oracle: offline-optimal eviction (Belady) plus a prefetch-timeline solver over
// a recorded gate-decision tape (gate_recorder.h), and the gap report every policy is
// measured against (DESIGN.md §5k).
//
// Two stages, one tape:
//   * BeladyReplay — minimum-fetch eviction schedule: farthest-next-use with bypass,
//     replayed against the same per-instant effective capacity (KV-pressure reservations
//     included) and the same-group pinning rule the engine enforces (one layer's demands
//     cannot evict each other mid-layer). Its misses are the *mandatory fetches*: transfers
//     no schedule with this capacity can avoid.
//   * The prefetch-timeline solver — the clairvoyant also prefetches: every mandatory fetch
//     is scheduled as early as physically possible (released at virtual time zero for first
//     uses — foresight preloads compulsory fetches during the same warmup phase the engine
//     fills its cache in — at the key's previous eviction/bypass instant for refetches) on
//     its device's
//     host link (fixed latency + bytes/bandwidth, transfers on one link serialize), in
//     deadline order. A fetch that lands by its use time is a clairvoyant *hit*; a late one
//     is a clairvoyant miss stalling by its lateness. Everything else the real engine pays —
//     queueing, batching, matcher latency, contention with speculative traffic — is relaxed
//     away, which is why the resulting stall is a *lower* bound.
//
// The gap report compares what the replayed policy did (recorded per access + the measured
// demand-stall seconds) against the schedule the oracle constructs.
#ifndef FMOE_SRC_ORACLE_ORACLE_H_
#define FMOE_SRC_ORACLE_ORACLE_H_

#include <cstdint>
#include <vector>

#include "src/memsim/link.h"
#include "src/oracle/gate_recorder.h"

namespace fmoe {

struct OracleConfig {
  uint64_t expert_bytes = 0;  // Per-expert weight size; 0 = capacity never binds.
  LinkConfig link;            // Host→GPU link model for the timeline solver.
};

// The optimality-gap block threaded through ExperimentResult / report JSON.
struct OracleReport {
  uint64_t accesses = 0;
  uint64_t policy_hits = 0;
  uint64_t policy_misses = 0;
  // Belady's mandatory fetch count: accesses whose key could not have been resident under
  // the recorded capacity, i.e. the fewest transfers any schedule must perform.
  uint64_t oracle_fetches = 0;
  // Clairvoyant outcome after the timeline solver: a fetch landing by its use time is a hit.
  uint64_t oracle_hits = 0;
  uint64_t oracle_misses = 0;   // = late fetches; never above oracle_fetches.
  double policy_stall_s = 0.0;  // Measured demand-stall seconds (LatencyBreakdown).
  double oracle_stall_s = 0.0;  // Total lateness of the clairvoyant schedule.
  // Gap semantics (recomputed whenever counters change; clamped to [0, 1] / [0, 100]):
  //   miss_gap  = (policy_misses - oracle_misses) / policy_misses — the fraction of the
  //               policy's misses a clairvoyant scheduler would have avoided (0 = optimal).
  //   stall_gap = (policy_stall_s - oracle_stall_s) / policy_stall_s — same, in demand-stall
  //               seconds against the timeline bound (0 = at the bound).
  //   pct_of_clairvoyant = 100 * policy_hits / oracle_hits — the headline "% of clairvoyant
  //               optimum" hit figure (100 = matched perfect foresight).
  double miss_gap = 0.0;
  double stall_gap = 0.0;
  double pct_of_clairvoyant = 100.0;
};

// Replays the tape through the clairvoyant evictor alone. Returns one flag per access, in
// tape order: non-zero = the key was resident (no fetch needed). Deterministic (victim ties
// break toward the larger key).
std::vector<char> BeladyReplay(const std::vector<OracleAccess>& accesses,
                               uint64_t expert_bytes);

// Runs both stages over a recorded tape and fills the gap report. `policy_stall_s` is the
// measured window's LatencyBreakdown::demand_stall.
OracleReport ComputeOracleReport(const GateDecisionRecorder& recorder,
                                 const OracleConfig& config, double policy_stall_s);

// Sums `from`'s counters and stall seconds into `into` and recomputes the gaps — the
// cluster runner merges one per-replica report per engine this way.
void AccumulateOracleReport(OracleReport* into, const OracleReport& from);

}  // namespace fmoe

#endif  // FMOE_SRC_ORACLE_ORACLE_H_
