#include "src/oracle/oracle.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace fmoe {
namespace {

constexpr size_t kNoNextUse = std::numeric_limits<size_t>::max();

// Eviction-stage replay output: per-access residency plus, for every mandatory fetch, the
// earliest instant the clairvoyant could have started its transfer.
struct ReplayResult {
  std::vector<char> hit;
  std::vector<double> release;  // Valid where hit[i] == 0.
};

ReplayResult ReplayBelady(const std::vector<OracleAccess>& accesses, uint64_t expert_bytes) {
  const size_t n = accesses.size();
  ReplayResult result;
  result.hit.assign(n, 0);
  result.release.assign(n, 0.0);

  // next_use[i]: index of the next access of the same key, or kNoNextUse. Built backwards.
  std::vector<size_t> next_use(n, kNoNextUse);
  std::unordered_map<uint64_t, size_t> seen;
  for (size_t i = n; i-- > 0;) {
    auto [it, inserted] = seen.try_emplace(accesses[i].key, i);
    if (!inserted) {
      next_use[i] = it->second;
      it->second = i;
    }
  }

  // Residency state: key -> index of its next use (kNoNextUse = never again). last_group
  // pins same-group residents (one layer's demands cannot evict each other, mirroring the
  // engine's Pin window); last_departure records when a key last left the cache (eviction
  // or bypass) — before that instant a clairvoyant refetch is physically meaningless, since
  // the key was still resident (or being streamed) then.
  std::unordered_map<uint64_t, size_t> resident;
  std::unordered_map<uint64_t, int> last_group;
  std::unordered_map<uint64_t, double> last_departure;

  const auto pinned = [&](uint64_t key, int group) {
    const auto it = last_group.find(key);
    return it != last_group.end() && it->second == group;
  };
  // Farthest-next-use unpinned resident; ties break toward the larger key so the replay is
  // deterministic regardless of hash-map iteration order.
  const auto find_victim = [&](int group, uint64_t* key_out, size_t* use_out) {
    bool found = false;
    for (const auto& [key, use] : resident) {
      if (pinned(key, group)) {
        continue;
      }
      if (!found || use > *use_out || (use == *use_out && key > *key_out)) {
        *key_out = key;
        *use_out = use;
        found = true;
      }
    }
    return found;
  };

  for (size_t i = 0; i < n; ++i) {
    const OracleAccess& a = accesses[i];
    const size_t capacity =
        expert_bytes == 0
            ? std::numeric_limits<size_t>::max()
            : static_cast<size_t>(a.effective_capacity_bytes / expert_bytes);

    // The KV reservation grew since the last access: shed farthest-next-use residents until
    // the budget fits again (pinned same-group entries survive, exactly as
    // ExpertCache::SetReservation evicts around pins).
    while (resident.size() > capacity) {
      uint64_t victim_key = 0;
      size_t victim_use = 0;
      if (!find_victim(a.group, &victim_key, &victim_use)) {
        break;
      }
      last_departure[victim_key] = a.time;
      resident.erase(victim_key);
    }

    const auto res_it = resident.find(a.key);
    if (res_it != resident.end()) {
      result.hit[i] = 1;
      res_it->second = next_use[i];
      last_group[a.key] = a.group;
      continue;
    }

    // Mandatory fetch. Earliest clairvoyant start: the key's last departure for a refetch,
    // or virtual time zero for a first use — perfect foresight preloads compulsory fetches
    // during warmup, exactly the phase in which the real engine also filled its cache.
    // (Releasing first uses at the *window* start instead would charge the oracle for
    // transfers the measured policy never paid, breaking the lower bound at large caches.)
    const auto dep_it = last_departure.find(a.key);
    result.release[i] = dep_it != last_departure.end() ? dep_it->second : 0.0;

    if (capacity == 0) {
      // Budget below one expert: streamed through a transient buffer, never cached.
      last_departure[a.key] = a.time;
      continue;
    }
    if (resident.size() >= capacity) {
      uint64_t victim_key = 0;
      size_t victim_use = 0;
      const bool have_victim = find_victim(a.group, &victim_key, &victim_use);
      if (!have_victim || next_use[i] >= victim_use) {
        // Bypass: nothing is evictable, or the incoming key is itself the farthest next
        // use — keeping every resident strictly dominates inserting it. Mirrors the
        // engine's transient-buffer streaming path (and is what makes farthest-next-use
        // optimal here rather than merely classical-Belady).
        last_departure[a.key] = a.time;
        continue;
      }
      last_departure[victim_key] = a.time;
      resident.erase(victim_key);
    }
    resident[a.key] = next_use[i];
    last_group[a.key] = a.group;
  }
  return result;
}

struct TimelineBound {
  double stall_s = 0.0;
  uint64_t late_fetches = 0;
};

// Deadline-ordered greedy over each device's host link: every mandatory fetch starts as
// early as its release and the link allow, transfers on one link serialize, and lateness
// past the use time is the only stall. Fetches arrive in tape order, which is use-time
// (deadline) order; with identical transfer durations this greedy is the exact optimum of
// the relaxed problem whenever releases are agreeable with deadlines (see DESIGN.md §5k for
// the caveat), so the result is the stall of an explicit clairvoyant schedule.
TimelineBound SolveTimeline(const std::vector<OracleAccess>& accesses,
                            const ReplayResult& replay, uint64_t expert_bytes,
                            const LinkConfig& link_config) {
  const PcieLink model(link_config);
  const double duration = model.TransferDuration(expert_bytes);

  TimelineBound bound;
  std::unordered_map<int, double> link_free;  // device -> instant its link is next idle.
  for (size_t i = 0; i < accesses.size(); ++i) {
    if (replay.hit[i]) {
      continue;
    }
    const OracleAccess& a = accesses[i];
    double& free_at = link_free.try_emplace(a.device, 0.0).first->second;
    const double start = std::max(replay.release[i], free_at);
    const double finish = start + duration;
    free_at = finish;
    const double lateness = finish - a.time;
    if (lateness > 0.0) {
      bound.stall_s += lateness;
      ++bound.late_fetches;
    }
  }
  return bound;
}

void Finalize(OracleReport* report) {
  report->miss_gap =
      report->policy_misses > 0
          ? std::clamp(static_cast<double>(report->policy_misses - report->oracle_misses) /
                           static_cast<double>(report->policy_misses),
                       0.0, 1.0)
          : 0.0;
  report->stall_gap =
      report->policy_stall_s > 0.0
          ? std::clamp((report->policy_stall_s - report->oracle_stall_s) /
                           report->policy_stall_s,
                       0.0, 1.0)
          : 0.0;
  report->pct_of_clairvoyant =
      report->oracle_hits > 0
          ? std::clamp(100.0 * static_cast<double>(report->policy_hits) /
                           static_cast<double>(report->oracle_hits),
                       0.0, 100.0)
          : 100.0;
}

}  // namespace

std::vector<char> BeladyReplay(const std::vector<OracleAccess>& accesses,
                               uint64_t expert_bytes) {
  return ReplayBelady(accesses, expert_bytes).hit;
}

OracleReport ComputeOracleReport(const GateDecisionRecorder& recorder,
                                 const OracleConfig& config, double policy_stall_s) {
  OracleReport report;
  const std::vector<OracleAccess>& accesses = recorder.accesses();
  report.accesses = accesses.size();
  for (const OracleAccess& access : accesses) {
    if (access.policy_hit) {
      ++report.policy_hits;
    } else {
      ++report.policy_misses;
    }
  }

  const ReplayResult replay = ReplayBelady(accesses, config.expert_bytes);
  for (const char hit : replay.hit) {
    if (!hit) {
      ++report.oracle_fetches;
    }
  }
  const TimelineBound bound =
      SolveTimeline(accesses, replay, config.expert_bytes, config.link);
  report.oracle_misses = bound.late_fetches;
  report.oracle_hits = report.accesses - report.oracle_misses;
  report.policy_stall_s = policy_stall_s;
  report.oracle_stall_s = bound.stall_s;
  Finalize(&report);
  return report;
}

void AccumulateOracleReport(OracleReport* into, const OracleReport& from) {
  into->accesses += from.accesses;
  into->policy_hits += from.policy_hits;
  into->policy_misses += from.policy_misses;
  into->oracle_fetches += from.oracle_fetches;
  into->oracle_hits += from.oracle_hits;
  into->oracle_misses += from.oracle_misses;
  into->policy_stall_s += from.policy_stall_s;
  into->oracle_stall_s += from.oracle_stall_s;
  Finalize(into);
}

}  // namespace fmoe
