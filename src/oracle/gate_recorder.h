// Gate-decision recorder: the oracle's input tape.
//
// A pure observer in the `src/obs/` mould (null-checked hook pointer, attaching one changes
// no timing, metrics, or policy decisions): the engine appends one OracleAccess per expert
// serving at the instant the gate demanded it, and the clairvoyant oracle (oracle.h) replays
// the tape after the run to compute the offline-optimal eviction/prefetch schedule. The
// recorder deliberately captures everything the oracle's constraints depend on — virtual
// time, the flat expert key, the *effective* cache capacity at that instant (KV-pressure
// reservations included), the serving device (whose host link the bytes would cross), and an
// access-group id marking which accesses were issued at the same clock instant (one MoE
// layer's demands; same-group residents pin each other, DESIGN.md §5k).
#ifndef FMOE_SRC_ORACLE_GATE_RECORDER_H_
#define FMOE_SRC_ORACLE_GATE_RECORDER_H_

#include <cstdint>
#include <vector>

namespace fmoe {

// One gate-demanded expert serving, as the oracle sees it.
struct OracleAccess {
  double time = 0.0;     // Virtual time of the gate demand (uniform within a group).
  uint64_t key = 0;      // Flat expert key (ModelConfig::FlatIndex).
  int layer = 0;
  int expert = 0;
  bool policy_hit = false;  // What the replayed policy actually achieved.
  // Capacity available to expert weights at this instant: cache capacity minus the KV
  // reservation (ExpertCache::effective_capacity_bytes). The oracle honors the same squeeze.
  uint64_t effective_capacity_bytes = 0;
  int device = 0;  // GpuCluster::DeviceForKey — which host link a (re)fetch would occupy.
  int group = 0;   // Access-group id: all demands of one layer instant share one id.
};

class GateDecisionRecorder {
 public:
  // Opens a new access group. Every subsequent OnAccess belongs to it until the next call.
  // The engine calls this once per (iteration, layer) immediately before issuing that
  // layer's demands — the natural "simultaneous demand" boundary of the serving loop.
  void BeginAccessGroup() { ++current_group_; }

  void OnAccess(double time, uint64_t key, int layer, int expert, bool policy_hit,
                uint64_t effective_capacity_bytes, int device) {
    OracleAccess access;
    access.time = time;
    access.key = key;
    access.layer = layer;
    access.expert = expert;
    access.policy_hit = policy_hit;
    access.effective_capacity_bytes = effective_capacity_bytes;
    access.device = device;
    access.group = current_group_;
    accesses_.push_back(access);
  }

  // Discards everything recorded so far and marks `now` as the measured window's start (the
  // engine calls this from ResetMetrics, so the tape covers exactly the window the metrics
  // describe — warmup runs are discarded from both).
  void Clear(double now) {
    accesses_.clear();
    window_start_ = now;
  }

  const std::vector<OracleAccess>& accesses() const { return accesses_; }
  double window_start() const { return window_start_; }
  bool empty() const { return accesses_.empty(); }

 private:
  std::vector<OracleAccess> accesses_;
  int current_group_ = 0;
  double window_start_ = 0.0;
};

}  // namespace fmoe

#endif  // FMOE_SRC_ORACLE_GATE_RECORDER_H_
