#include "src/harness/report.h"

#include <cstdio>
#include <iomanip>

namespace fmoe {
namespace {

// JSON-safe number formatting: fixed precision, never locale-dependent.
std::string Num(double value, int precision = 9) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteResultJson(const ExperimentResult& result, bool include_latencies,
                     std::ostream& out) {
  out << "{";
  out << "\"system\":\"" << JsonEscape(result.system) << "\",";
  out << "\"mean_ttft_s\":" << Num(result.mean_ttft) << ",";
  out << "\"mean_tpot_s\":" << Num(result.mean_tpot) << ",";
  out << "\"hit_rate\":" << Num(result.hit_rate) << ",";
  out << "\"mean_e2e_s\":" << Num(result.mean_e2e) << ",";
  out << "\"iterations\":" << result.iterations << ",";
  out << "\"cache_capacity_gb\":" << Num(result.cache_capacity_gb) << ",";
  out << "\"cache_used_gb\":" << Num(result.cache_used_gb) << ",";
  out << "\"mean_semantic_score\":" << Num(result.mean_semantic_score) << ",";
  out << "\"mean_trajectory_score\":" << Num(result.mean_trajectory_score) << ",";
  const LatencyBreakdown& b = result.breakdown;
  out << "\"breakdown\":{";
  out << "\"attention_compute_s\":" << Num(b.attention_compute) << ",";
  out << "\"expert_compute_s\":" << Num(b.expert_compute) << ",";
  out << "\"demand_stall_s\":" << Num(b.demand_stall) << ",";
  out << "\"layer_overhead_s\":" << Num(b.layer_overhead) << ",";
  out << "\"sync_overhead_s\":{";
  for (size_t i = 0; i < b.sync_overhead.size(); ++i) {
    out << "\"" << OverheadCategoryName(static_cast<OverheadCategory>(i))
        << "\":" << Num(b.sync_overhead[i]);
    if (i + 1 < b.sync_overhead.size()) {
      out << ",";
    }
  }
  out << "},\"async_work_s\":{";
  for (size_t i = 0; i < b.async_work.size(); ++i) {
    out << "\"" << OverheadCategoryName(static_cast<OverheadCategory>(i))
        << "\":" << Num(b.async_work[i]);
    if (i + 1 < b.async_work.size()) {
      out << ",";
    }
  }
  out << "},";
  out << "\"policy_critical_path_s\":" << Num(b.PolicyCriticalPathSeconds()) << ",";
  out << "\"policy_overlapped_s\":" << Num(b.PolicyOverlappedSeconds());
  out << "},";
  const DeferredPipelineStats& d = result.deferred;
  out << "\"deferred\":{";
  out << "\"published\":" << d.published << ",";
  out << "\"applied\":" << d.applied << ",";
  out << "\"superseded\":" << d.superseded << ",";
  out << "\"dropped\":" << d.dropped << ",";
  out << "\"blocking\":" << d.blocking << ",";
  out << "\"pending\":" << d.Pending() << ",";
  out << "\"modeled_work_s\":" << Num(d.modeled_work_s) << ",";
  out << "\"overlapped_s\":" << Num(d.overlapped_s) << ",";
  out << "\"wasted_work_s\":" << Num(d.wasted_work_s) << ",";
  out << "\"queue_wait_s\":" << Num(d.queue_wait_s) << ",";
  out << "\"decision_latency_s\":" << Num(d.decision_latency_s);
  out << "}";
  if (result.tier_enabled) {
    // Emitted only for multi-tier runs, so legacy (two-tier) reports stay byte-identical.
    const TierStats& t = result.tier;
    out << ",\"tier\":{";
    out << "\"host_capacity_gb\":" << Num(result.host_capacity_gb) << ",";
    out << "\"host_used_gb\":" << Num(result.host_used_gb) << ",";
    out << "\"host_hits\":" << t.host_hits << ",";
    out << "\"nvme_hits\":" << t.nvme_hits << ",";
    out << "\"gpu_fills_from_host\":" << t.gpu_fills_from_host << ",";
    out << "\"gpu_fills_chained\":" << t.gpu_fills_chained << ",";
    out << "\"direct_loads\":" << t.direct_loads << ",";
    out << "\"stages_issued\":" << t.stages_issued << ",";
    out << "\"stages_landed\":" << t.stages_landed << ",";
    out << "\"stage_promotions\":" << t.stage_promotions << ",";
    out << "\"demotions_to_host\":" << t.demotions_to_host << ",";
    out << "\"demotions_to_nvme\":" << t.demotions_to_nvme << ",";
    out << "\"host_spills\":" << t.host_spills;
    out << "}";
  }
  if (result.cluster_enabled) {
    // Emitted only for multi-replica runs, so single-engine reports stay byte-identical.
    const ClusterSummary& c = result.cluster;
    out << ",\"cluster\":{";
    out << "\"replicas\":" << c.replicas << ",";
    out << "\"router_policy\":\"" << RouterPolicyName(c.router) << "\",";
    out << "\"memory_mode\":\"" << ClusterMemoryModeName(c.memory) << "\",";
    out << "\"makespan_s\":" << Num(c.makespan) << ",";
    out << "\"aggregate_throughput_rps\":" << Num(c.aggregate_throughput_rps) << ",";
    out << "\"replica_stats\":[";
    for (size_t i = 0; i < c.replica_stats.size(); ++i) {
      const ClusterReplicaStats& r = c.replica_stats[i];
      out << "{\"replica\":" << r.replica << ",";
      out << "\"requests\":" << r.requests << ",";
      out << "\"iterations\":" << r.iterations << ",";
      out << "\"mean_e2e_s\":" << Num(r.mean_e2e) << ",";
      out << "\"hit_rate\":" << Num(r.hit_rate) << ",";
      out << "\"busy_until_s\":" << Num(r.busy_until) << "}";
      if (i + 1 < c.replica_stats.size()) {
        out << ",";
      }
    }
    out << "]}";
  }
  if (result.admission_enabled) {
    // Emitted only for closed-loop admission runs, so open-loop reports stay byte-identical.
    out << ",\"admission\":{";
    out << "\"policy\":\"" << AdmissionPolicyName(result.admission_policy) << "\",";
    out << "\"arrived\":" << result.admission.arrived << ",";
    out << "\"admitted\":" << result.admission.admitted << ",";
    out << "\"rejected\":" << result.admission.rejected;
    out << "}";
  }
  if (result.oracle_enabled) {
    // Emitted only when the clairvoyant oracle ran, so default reports stay byte-identical.
    const OracleReport& o = result.oracle;
    out << ",\"oracle\":{";
    out << "\"accesses\":" << o.accesses << ",";
    out << "\"policy_hits\":" << o.policy_hits << ",";
    out << "\"policy_misses\":" << o.policy_misses << ",";
    out << "\"oracle_fetches\":" << o.oracle_fetches << ",";
    out << "\"oracle_hits\":" << o.oracle_hits << ",";
    out << "\"oracle_misses\":" << o.oracle_misses << ",";
    out << "\"policy_stall_s\":" << Num(o.policy_stall_s) << ",";
    out << "\"oracle_stall_s\":" << Num(o.oracle_stall_s) << ",";
    out << "\"miss_gap\":" << Num(o.miss_gap) << ",";
    out << "\"stall_gap\":" << Num(o.stall_gap) << ",";
    out << "\"pct_of_clairvoyant\":" << Num(o.pct_of_clairvoyant);
    out << "}";
  }
  if (include_latencies) {
    out << ",\"request_latencies_s\":[";
    for (size_t i = 0; i < result.request_latencies.size(); ++i) {
      out << Num(result.request_latencies[i]);
      if (i + 1 < result.request_latencies.size()) {
        out << ",";
      }
    }
    out << "]";
  }
  out << "}";
}

void WriteResultsJson(const std::vector<ExperimentResult>& results, bool include_latencies,
                      std::ostream& out) {
  out << "[";
  for (size_t i = 0; i < results.size(); ++i) {
    WriteResultJson(results[i], include_latencies, out);
    if (i + 1 < results.size()) {
      out << ",";
    }
  }
  out << "]\n";
}

void WritePlanReportJson(const ExperimentPlan& plan,
                         const std::vector<ExperimentResult>& results,
                         bool include_latencies, std::ostream& out) {
  out << "{\"plan_seed\":" << plan.plan_seed() << ",\"tasks\":[";
  const std::vector<ExperimentTask>& tasks = plan.tasks();
  for (size_t i = 0; i < tasks.size(); ++i) {
    const ExperimentTask& task = tasks[i];
    out << "{\"index\":" << i << ",";
    out << "\"system\":\"" << JsonEscape(task.system) << "\",";
    const char* mode = task.mode == ExperimentMode::kOffline      ? "offline"
                       : task.mode == ExperimentMode::kOnline     ? "online"
                       : task.mode == ExperimentMode::kScheduled  ? "scheduled"
                                                                  : "cluster";
    out << "\"mode\":\"" << mode << "\",";
    out << "\"seed\":" << task.options.seed << ",";
    out << "\"tags\":[";
    for (size_t t = 0; t < task.tags.size(); ++t) {
      out << "\"" << JsonEscape(task.tags[t]) << "\"";
      if (t + 1 < task.tags.size()) {
        out << ",";
      }
    }
    out << "],\"result\":";
    if (i < results.size()) {
      WriteResultJson(results[i], include_latencies, out);
    } else {
      out << "null";
    }
    out << "}";
    if (i + 1 < tasks.size()) {
      out << ",";
    }
  }
  out << "]}\n";
}

void WriteResultsCsv(const std::vector<ExperimentResult>& results, std::ostream& out) {
  out << "system,ttft_s,tpot_s,hit_rate,e2e_s,iterations,cache_capacity_gb,cache_used_gb,"
         "demand_stall_s,sync_overhead_s\n";
  for (const ExperimentResult& result : results) {
    out << result.system << "," << Num(result.mean_ttft) << "," << Num(result.mean_tpot) << ","
        << Num(result.hit_rate) << "," << Num(result.mean_e2e) << "," << result.iterations
        << "," << Num(result.cache_capacity_gb) << "," << Num(result.cache_used_gb) << ","
        << Num(result.breakdown.demand_stall) << ","
        << Num(result.breakdown.TotalSyncOverhead()) << "\n";
  }
}

}  // namespace fmoe
