// Machine-readable experiment reports: JSON documents and CSV rows for ExperimentResult, so
// external tooling (plotting scripts, dashboards) can consume runs without parsing tables.
#ifndef FMOE_SRC_HARNESS_REPORT_H_
#define FMOE_SRC_HARNESS_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/plan.h"

namespace fmoe {

// Serialises one result as a JSON object (stable key order, no external dependencies).
// `include_latencies` additionally embeds the per-request latency array (Fig. 10 CDF data).
void WriteResultJson(const ExperimentResult& result, bool include_latencies,
                     std::ostream& out);

// Serialises several results as a JSON array.
void WriteResultsJson(const std::vector<ExperimentResult>& results, bool include_latencies,
                      std::ostream& out);

// Serialises a whole plan run: one document with the plan seed and, per task (in plan
// order), its declaration (system, mode, seed, tags) alongside its result. This is what
// every figure bench emits for --out_json.
void WritePlanReportJson(const ExperimentPlan& plan,
                         const std::vector<ExperimentResult>& results,
                         bool include_latencies, std::ostream& out);

// CSV with one row per result. Header:
//   system,ttft_s,tpot_s,hit_rate,e2e_s,iterations,cache_capacity_gb,cache_used_gb,
//   demand_stall_s,sync_overhead_s
void WriteResultsCsv(const std::vector<ExperimentResult>& results, std::ostream& out);

// Escapes a string for embedding in JSON (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& text);

}  // namespace fmoe

#endif  // FMOE_SRC_HARNESS_REPORT_H_
