#include "src/harness/plan.h"

#include <algorithm>

#include "src/util/rng.h"

namespace fmoe {

bool ExperimentTask::HasTag(const std::string& tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

size_t ExperimentPlan::Add(ExperimentTask task) {
  const size_t index = tasks_.size();
  if (task.options.seed == kSeedFromPlan) {
    task.options.seed = DeriveTaskSeed(plan_seed_, index);
  }
  tasks_.push_back(std::move(task));
  return index;
}

size_t ExperimentPlan::AddOffline(std::string system, ExperimentOptions options,
                                  std::vector<std::string> tags) {
  ExperimentTask task;
  task.system = std::move(system);
  task.options = std::move(options);
  task.mode = ExperimentMode::kOffline;
  task.tags = std::move(tags);
  return Add(std::move(task));
}

size_t ExperimentPlan::AddOnline(std::string system, ExperimentOptions options,
                                 TraceProfile trace, size_t request_count,
                                 std::vector<std::string> tags) {
  ExperimentTask task;
  task.system = std::move(system);
  task.options = std::move(options);
  task.mode = ExperimentMode::kOnline;
  task.trace = trace;
  task.request_count = request_count;
  task.tags = std::move(tags);
  return Add(std::move(task));
}

size_t ExperimentPlan::AddScheduled(std::string system, ExperimentOptions options,
                                    TraceProfile trace, size_t request_count,
                                    SchedulerOptions scheduler, std::vector<std::string> tags) {
  ExperimentTask task;
  task.system = std::move(system);
  task.options = std::move(options);
  task.mode = ExperimentMode::kScheduled;
  task.trace = trace;
  task.request_count = request_count;
  task.scheduler = scheduler;
  task.tags = std::move(tags);
  return Add(std::move(task));
}

size_t ExperimentPlan::AddCluster(std::string system, ExperimentOptions options,
                                  TraceProfile trace, size_t request_count,
                                  std::vector<std::string> tags) {
  ExperimentTask task;
  task.system = std::move(system);
  task.options = std::move(options);
  task.mode = ExperimentMode::kCluster;
  task.trace = trace;
  task.request_count = request_count;
  task.tags = std::move(tags);
  return Add(std::move(task));
}

std::vector<size_t> ExperimentPlan::IndicesWithTag(const std::string& tag) const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].HasTag(tag)) {
      indices.push_back(i);
    }
  }
  return indices;
}

uint64_t ExperimentPlan::DeriveTaskSeed(uint64_t plan_seed, size_t task_index) {
  // Two SplitMix64 steps over a state mixing both inputs: one step alone maps nearby indices
  // to correlated outputs of a single additive orbit; stepping twice from the combined state
  // gives well-separated streams for sibling tasks.
  uint64_t state = plan_seed ^ (static_cast<uint64_t>(task_index) * 0x9e3779b97f4a7c15ULL);
  (void)SplitMix64(state);
  uint64_t seed = SplitMix64(state);
  // Never collide with the sentinel (the derived seed must stay stable once resolved).
  if (seed == kSeedFromPlan) {
    seed = SplitMix64(state);
  }
  return seed;
}

}  // namespace fmoe
