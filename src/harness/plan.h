// Declarative experiment plans.
//
// Every paper figure is a cross-product of independent RunOffline/RunOnline calls (3 models x
// 2 datasets x 5 systems, a prefetch-distance sweep, ...). An ExperimentPlan captures that
// cross-product as data — an ordered vector of ExperimentTask — so the runner (runner.h) can
// execute it on any number of worker threads and hand back results in plan order, and so the
// figure benches shrink to "declare plan, run, render over ordered results".
//
// Determinism contract: a task's behaviour is a pure function of (system, options, trace,
// request_count). The only random seed a task ever sees is options.seed, which is fixed at
// Add() time: either the value the caller set explicitly, or — when the caller leaves
// kSeedFromPlan in place — a value derived from (plan_seed, task_index) alone. Nothing about
// execution (worker id, scheduling order, completion order) can influence a result, which is
// what makes `--jobs=1` and `--jobs=N` byte-identical.
#ifndef FMOE_SRC_HARNESS_PLAN_H_
#define FMOE_SRC_HARNESS_PLAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/experiment.h"

namespace fmoe {

enum class ExperimentMode { kOffline, kOnline, kScheduled, kCluster };

// Sentinel: "derive this task's seed from (plan_seed, task_index)". ExperimentOptions
// defaults its seed to 42 for backwards compatibility, so derivation is opt-in per task.
inline constexpr uint64_t kSeedFromPlan = ~0ULL;

struct ExperimentTask {
  std::string system;
  ExperimentOptions options;
  ExperimentMode mode = ExperimentMode::kOffline;
  TraceProfile trace;        // Online / scheduled tasks only.
  size_t request_count = 0;  // Online / scheduled tasks only (trace length).
  SchedulerOptions scheduler;  // Scheduled tasks only (batch limit, queue discipline).
  // Free-form "key=value" labels benches use to locate results in the ordered vector
  // (e.g. "model=Mixtral-8x7B", "system=fMoE", "d=3").
  std::vector<std::string> tags;

  bool HasTag(const std::string& tag) const;
};

class ExperimentPlan {
 public:
  explicit ExperimentPlan(uint64_t plan_seed = 42) : plan_seed_(plan_seed) {}

  // Appends a task and returns its index (== position of its result in the runner's output).
  // Resolves kSeedFromPlan seeds here so the stored plan is fully explicit.
  size_t Add(ExperimentTask task);

  // Convenience forms of Add().
  size_t AddOffline(std::string system, ExperimentOptions options,
                    std::vector<std::string> tags = {});
  size_t AddOnline(std::string system, ExperimentOptions options, TraceProfile trace,
                   size_t request_count, std::vector<std::string> tags = {});
  size_t AddScheduled(std::string system, ExperimentOptions options, TraceProfile trace,
                      size_t request_count, SchedulerOptions scheduler,
                      std::vector<std::string> tags = {});
  // Cluster task (RunCluster): replicas/router/memory come from options (see
  // ExperimentOptions). options.replicas == 1 is RunOnline bit for bit.
  size_t AddCluster(std::string system, ExperimentOptions options, TraceProfile trace,
                    size_t request_count, std::vector<std::string> tags = {});

  // Model x dataset x system cross-product in row-major declaration order (model outermost,
  // system innermost — the iteration order every figure bench uses). `make_options` is
  // called as make_options(model, dataset) and must return the fully-configured
  // ExperimentOptions for that cell. Tasks are tagged with model=, dataset=, and system=.
  // Returns the indices in declaration order.
  template <typename OptionsFn>
  std::vector<size_t> AddOfflineCross(const std::vector<ModelConfig>& models,
                                      const std::vector<DatasetProfile>& datasets,
                                      const std::vector<std::string>& systems,
                                      OptionsFn&& make_options) {
    std::vector<size_t> indices;
    indices.reserve(models.size() * datasets.size() * systems.size());
    for (const ModelConfig& model : models) {
      for (const DatasetProfile& dataset : datasets) {
        for (const std::string& system : systems) {
          indices.push_back(AddOffline(
              system, make_options(model, dataset),
              {"model=" + model.name, "dataset=" + dataset.name, "system=" + system}));
        }
      }
    }
    return indices;
  }

  // Parameter sweep: one offline task per value, `mutate(options, value)` applied to a copy
  // of `base`. Each task is tagged "system=<system>" and "<tag_key>=<position>" (the sweep
  // position, not the value — values may not have a canonical text form). Returns indices in
  // value order.
  template <typename T, typename MutateFn>
  std::vector<size_t> AddOfflineSweep(const std::string& system, const ExperimentOptions& base,
                                      const std::vector<T>& values, MutateFn&& mutate,
                                      const std::string& tag_key) {
    std::vector<size_t> indices;
    indices.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      ExperimentOptions options = base;
      mutate(options, values[i]);
      indices.push_back(AddOffline(system, std::move(options),
                                   {"system=" + system, tag_key + "=" + std::to_string(i)}));
    }
    return indices;
  }

  const std::vector<ExperimentTask>& tasks() const { return tasks_; }
  // Mutable view for post-declaration knob overrides that apply to every task uniformly
  // (e.g. BenchMain's --oracle flag enabling the clairvoyant recorder plan-wide).
  std::vector<ExperimentTask>& mutable_tasks() { return tasks_; }
  size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  uint64_t plan_seed() const { return plan_seed_; }

  // Indices of every task carrying `tag`, in plan order.
  std::vector<size_t> IndicesWithTag(const std::string& tag) const;

  // The seed-derivation rule (stateless; exposed for tests and DESIGN.md §5e): a SplitMix64
  // mix of the plan seed and the task index, so sibling tasks get decorrelated streams and
  // the mapping depends on nothing but those two values.
  static uint64_t DeriveTaskSeed(uint64_t plan_seed, size_t task_index);

 private:
  uint64_t plan_seed_;
  std::vector<ExperimentTask> tasks_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_HARNESS_PLAN_H_
