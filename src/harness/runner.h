// Deterministic parallel execution of experiment plans.
//
// RunPlan executes every task of an ExperimentPlan — serially at jobs=1 (byte-identical to
// the historical one-call-at-a-time benches), or on a worker thread pool at jobs=N — and
// returns the results in plan order. Determinism holds by construction: each task is a pure
// function of its own (system, options, trace) with a seed fixed at plan-build time (see
// plan.h), RunOffline/RunOnline construct every stateful component (engine, gate simulator,
// caches, policy) per call with no shared mutable state, and workers write only their own
// result slot. Thread count therefore changes wall-clock time and nothing else.
#ifndef FMOE_SRC_HARNESS_RUNNER_H_
#define FMOE_SRC_HARNESS_RUNNER_H_

#include <functional>
#include <vector>

#include "src/harness/plan.h"

namespace fmoe {

struct RunnerOptions {
  // Worker threads. 1 = run inline on the calling thread (no pool); <= 0 = one per
  // hardware thread.
  int jobs = 1;
  // Optional trace recorder attached to exactly one task (`trace_task`, a plan index). One
  // task because a recorder holds a single virtual timeline; tracing never changes results,
  // so traced runs stay bitwise identical to untraced ones at any job count. The recorder is
  // written from whichever worker runs that task — do not share it across concurrent plans.
  TraceRecorder* trace = nullptr;  // Not owned.
  size_t trace_task = 0;
};

// Executes one task (the dispatch RunPlan applies per entry; exposed for tests). A non-null
// `trace` is attached to the task's engine for the duration of the run.
ExperimentResult RunTask(const ExperimentTask& task, TraceRecorder* trace = nullptr);

// Executes the whole plan and returns results in plan order (results[i] belongs to
// plan.tasks()[i]). The optional `on_done` callback fires after each task completes —
// on the worker that ran it, under no lock — with the task index; renderers must NOT use it
// for output (completion order is nondeterministic), only for progress accounting.
std::vector<ExperimentResult> RunPlan(const ExperimentPlan& plan,
                                      const RunnerOptions& options = {},
                                      const std::function<void(size_t)>& on_done = nullptr);

}  // namespace fmoe

#endif  // FMOE_SRC_HARNESS_RUNNER_H_
