// Experiment runners reproducing the paper's evaluation methodology (§6.1):
//   * RunOffline — standard 7:3 protocol: history requests warm the policy (expert-map store /
//     EAM) and the cache, then the test requests are served and measured.
//   * RunOnline  — cold start (empty history) against an Azure-like arrival trace; requests are
//     served in arrival order and end-to-end latencies include queueing (§6.3).
// Every figure bench and the integration tests are thin loops over these two calls.
#ifndef FMOE_SRC_HARNESS_EXPERIMENT_H_
#define FMOE_SRC_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/tiered_store.h"
#include "src/core/fmoe_policy.h"
#include "src/harness/systems.h"
#include "src/memsim/gpu.h"
#include "src/moe/cost_model.h"
#include "src/moe/gate_simulator.h"
#include "src/oracle/oracle.h"
#include "src/serving/cluster.h"
#include "src/serving/metrics.h"
#include "src/serving/scheduler.h"
#include "src/serving/trace.h"
#include "src/workload/workload.h"

namespace fmoe {

class TraceRecorder;

struct ExperimentOptions {
  ModelConfig model;
  DatasetProfile dataset;
  size_t history_requests = 140;
  size_t test_requests = 48;
  int batch_size = 1;
  int prefetch_distance = 3;        // d = 3, the paper's profiled optimum.
  int gpu_count = 6;                // Paper testbed: six RTX 3090s.
  uint64_t cache_bytes = 0;         // Expert-cache budget; 0 => cache_fraction of all experts.
  double cache_fraction = 0.22;
  int max_decode_tokens = 48;       // Speed cap on generation length; <= 0 keeps the dataset's.
  uint64_t seed = 42;
  size_t store_capacity = 512;      // fMoE map-store capacity for experiments.
  bool enable_score_log = false;    // Per-iteration similarity log (Fig. 8).
  bool keep_iteration_records = false;
  // Background matcher-worker model (see EngineConfig): 0 = instantaneous decisions (the
  // historical semantics), 1 = matcher running at the modeled search throughput.
  double matcher_latency_scale = 0.0;
  int matcher_queue_depth = 32;
  // Engine knobs the design-ablation experiments sweep (EngineConfig pass-throughs; the
  // defaults match EngineConfig's, so untouched options change nothing).
  double frequency_decay = 0.6;  // Per-iteration aging of cache hit frequencies.
  PlacementStrategy placement = PlacementStrategy::kRoundRobin;
  // Mixed-precision extension knob (fMoE-family systems only; see FmoeOptions).
  double low_precision_threshold = 0.0;
  // Expert Map Store column precision (fMoE-family systems; DESIGN.md §5g). fp16/int8 trade
  // tolerance-bounded match accuracy for a 2×/4× smaller Fig. 16 store footprint.
  MapPrecision map_precision = MapPrecision::kFp32;
  // Multi-tier store configuration (DESIGN.md §5h). The default (nvme_backing off) replays
  // the legacy two-tier GPU↔host path bit-identically.
  TierConfig tier;
  // fMoE-family tier-aware prefetch: top-N scored-but-not-selected map candidates staged
  // NVMe→host per matched layer. No-op unless tier.nvme_backing is on.
  int host_stage_candidates = 0;
  // Semantic-cluster shard count for the fMoE Expert Map Store (DESIGN.md §5i). 1 replays
  // the unsharded store byte-identically.
  int map_shards = 1;
  // Admission policy + controller knobs (DESIGN.md §5j) for the runners that queue requests:
  // RunCluster reads this directly (one controller per replica); RunScheduled takes its
  // SchedulerOptions parameter as the authority (set sched.admission — fmoe_sim wires both
  // from the same flags). The default open-loop policy replays every legacy path
  // byte-identically.
  AdmissionOptions admission;
  // Cluster knobs (RunCluster only; ignored by the single-engine runners). replicas = 1
  // replays RunOnline byte-identically regardless of router/memory settings.
  int replicas = 1;
  RouterPolicy router_policy = RouterPolicy::kRoundRobin;
  ClusterMemoryMode cluster_memory = ClusterMemoryMode::kReplicate;
  GateProfile gate;
  HardwareProfile hardware;
  // Optional virtual-time trace recorder (not owned; must outlive the run). Pure observer:
  // attaching one changes nothing about the run. For RunOffline the warmup phase resets it,
  // so the recorded trace covers exactly the measured requests.
  TraceRecorder* trace = nullptr;
  // Clairvoyant oracle (DESIGN.md §5k): record the gate-decision tape and compute the
  // Belady/prefetch-timeline optimality gap into ExperimentResult::oracle. Pure observer —
  // every non-oracle field of the result (and therefore every golden report) is
  // byte-identical whether this is on or off.
  bool oracle = false;
};

struct ExperimentResult {
  std::string system;
  double mean_ttft = 0.0;
  double mean_tpot = 0.0;
  double hit_rate = 0.0;
  double mean_e2e = 0.0;
  uint64_t iterations = 0;
  LatencyBreakdown breakdown;
  DeferredPipelineStats deferred;  // Pub-sub pipeline counters for the measured phase.
  double cache_capacity_gb = 0.0;
  double cache_used_gb = 0.0;  // Residency at the end of the run.
  std::vector<double> request_latencies;  // End-to-end per request (Fig. 10 CDF).
  std::vector<IterationRecord> iteration_records;
  std::vector<FmoePolicy::IterationScoreSample> score_log;
  double mean_semantic_score = 0.0;    // fMoE-family systems only.
  double mean_trajectory_score = 0.0;  // fMoE-family systems only.
  double low_precision_share = 0.0;    // Share of expert servings at reduced precision.
  // Scheduled runs only (RunScheduled): continuous-batching counters and the total output
  // tokens of the completed requests (for SchedulerStats::Throughput).
  SchedulerStats scheduler_stats;
  uint64_t scheduled_tokens = 0;
  // Multi-tier runs only (options.tier.nvme_backing): tier movement counters plus host-pool
  // occupancy. tier_enabled is false on legacy two-tier runs (the report omits the block).
  bool tier_enabled = false;
  TierStats tier;
  double host_capacity_gb = 0.0;
  double host_used_gb = 0.0;
  // Cluster runs only (RunCluster with replicas > 1): per-replica stats and the aggregate
  // makespan/throughput summary. cluster_enabled is false on single-replica runs (the
  // report omits the block and the result is byte-identical to RunOnline).
  bool cluster_enabled = false;
  ClusterSummary cluster;
  // Closed-loop runs only (a non-open-loop admission policy on the scheduled or cluster
  // runners): the active policy and the conservation counters, merged across replicas.
  // admission_enabled is false on open-loop runs, so legacy reports stay byte-identical.
  bool admission_enabled = false;
  AdmissionPolicyKind admission_policy = AdmissionPolicyKind::kOpenLoop;
  AdmissionCounters admission;
  // Oracle runs only (options.oracle): the clairvoyant optimality-gap report, merged across
  // replicas on cluster runs. oracle_enabled is false by default, so legacy reports stay
  // byte-identical (the report omits the block).
  bool oracle_enabled = false;
  OracleReport oracle;
};

ExperimentResult RunOffline(const std::string& system_name, const ExperimentOptions& options);

ExperimentResult RunOnline(const std::string& system_name, const ExperimentOptions& options,
                           const TraceProfile& trace, size_t request_count);

// Continuous-batching protocol: requests from the trace are admitted by a
// ContinuousBatchScheduler (batch limit + queue discipline + admission policy from `sched`)
// instead of the online protocol's FIFO one-at-a-time loop. request_latencies holds
// end-to-end latencies in completion order (what the scheduler drains), not arrival order;
// with a shedding admission policy it covers served requests only.
ExperimentResult RunScheduled(const std::string& system_name, const ExperimentOptions& options,
                              const TraceProfile& trace, size_t request_count,
                              const SchedulerOptions& sched);

// RunScheduled over a caller-supplied request sequence (must be sorted by arrival time) —
// e.g. a burst/overload trace from src/workload/burst.h or a loaded CSV.
ExperimentResult RunScheduledReplay(const std::string& system_name,
                                    const ExperimentOptions& options,
                                    const std::vector<Request>& requests,
                                    const SchedulerOptions& sched);

// Multi-replica cluster protocol (DESIGN.md §5i): the trace's requests are routed across
// `options.replicas` independent engines by `options.router_policy` and served in arrival
// order. Per-request latencies are reported in arrival order (merged across replicas).
// With replicas == 1 this is RunOnline, bit for bit. A non-open-loop options.admission
// policy runs one controller per replica (composing with the router): each replica's
// controller sees only its routed arrivals, may shed them against the SLO, and drives that
// engine's prefetch distance; latencies then cover admitted requests only.
ExperimentResult RunCluster(const std::string& system_name, const ExperimentOptions& options,
                            const TraceProfile& trace, size_t request_count);

// Replay protocol: serves a caller-supplied request sequence (e.g. loaded from a trace CSV)
// in order on one engine, cold-started like RunOnline.
ExperimentResult RunReplay(const std::string& system_name, const ExperimentOptions& options,
                           const std::vector<Request>& requests);

// Resolves the cache budget an options struct implies, in bytes.
uint64_t ResolveCacheBytes(const ExperimentOptions& options);

}  // namespace fmoe

#endif  // FMOE_SRC_HARNESS_EXPERIMENT_H_
