#include "src/harness/systems.h"

#include "src/baselines/eam_policy.h"
#include "src/baselines/on_demand_policy.h"
#include "src/baselines/speculative_policy.h"
#include "src/core/fmoe_policy.h"
#include "src/util/logging.h"

namespace fmoe {
namespace {

SystemSpec FmoeVariant(const std::string& name, const ModelConfig& model, int distance,
                       bool semantic, bool dynamic_threshold, const std::string& cache,
                       size_t store_capacity, double low_precision_threshold,
                       MapPrecision map_precision, int host_stage_candidates, int map_shards,
                       StoreDedupPolicy dedup = StoreDedupPolicy::kRedundancy) {
  FmoeOptions options;
  options.variant_name = name;
  options.store_capacity = store_capacity;
  options.store_dedup = dedup;
  options.map_precision = map_precision;
  options.low_precision_threshold = low_precision_threshold;
  options.host_stage_candidates = host_stage_candidates;
  options.map_shards = map_shards;
  options.matcher.use_semantic = semantic;
  options.matcher.use_trajectory = true;
  options.prefetcher.dynamic_threshold = dynamic_threshold;
  // Without the delta mechanism the ablation prefetches exactly the top-K of the matched map
  // (what the baselines do); delta adds hedging with extra experts under low match confidence.
  options.prefetcher.min_extra_experts = dynamic_threshold ? 1 : 0;
  SystemSpec spec;
  spec.name = name;
  spec.cache_policy = cache;
  spec.policy = std::make_unique<FmoePolicy>(model, distance, options);
  return spec;
}

}  // namespace

SystemSpec MakeSystem(const std::string& name, const ModelConfig& model, int prefetch_distance,
                      size_t fmoe_store_capacity, double low_precision_threshold,
                      MapPrecision map_precision, int host_stage_candidates, int map_shards) {
  SystemSpec spec;
  spec.name = name;
  if (name == "fMoE") {
    return FmoeVariant(name, model, prefetch_distance, /*semantic=*/true,
                       /*dynamic_threshold=*/true, "fMoE-PriorityLFU",
                       fmoe_store_capacity, low_precision_threshold, map_precision,
                       host_stage_candidates, map_shards);
  }
  if (name == "Map(T)") {
    return FmoeVariant(name, model, prefetch_distance, /*semantic=*/false,
                       /*dynamic_threshold=*/false, "fMoE-PriorityLFU",
                       fmoe_store_capacity, low_precision_threshold, map_precision,
                       host_stage_candidates, map_shards);
  }
  if (name == "Map(T+S)") {
    return FmoeVariant(name, model, prefetch_distance, /*semantic=*/true,
                       /*dynamic_threshold=*/false, "fMoE-PriorityLFU",
                       fmoe_store_capacity, low_precision_threshold, map_precision,
                       host_stage_candidates, map_shards);
  }
  if (name == "Map(T+S+d)") {
    return FmoeVariant(name, model, prefetch_distance, /*semantic=*/true,
                       /*dynamic_threshold=*/true, "fMoE-PriorityLFU",
                       fmoe_store_capacity, low_precision_threshold, map_precision,
                       host_stage_candidates, map_shards);
  }
  if (name == "fMoE-FIFOStore") {
    return FmoeVariant(name, model, prefetch_distance, true, true, "fMoE-PriorityLFU",
                       fmoe_store_capacity, low_precision_threshold, map_precision,
                       host_stage_candidates, map_shards, StoreDedupPolicy::kFifo);
  }
  if (name == "fMoE-LRU") {
    return FmoeVariant(name, model, prefetch_distance, true, true, "LRU",
                       fmoe_store_capacity, low_precision_threshold, map_precision,
                       host_stage_candidates, map_shards);
  }
  if (name == "fMoE-LFU") {
    return FmoeVariant(name, model, prefetch_distance, true, true, "LFU",
                       fmoe_store_capacity, low_precision_threshold, map_precision,
                       host_stage_candidates, map_shards);
  }
  if (name == "MoE-Infinity") {
    spec.cache_policy = "LFU";
    spec.policy = std::make_unique<EamPolicy>(model, prefetch_distance, EamOptions{});
    return spec;
  }
  if (name == "HitCount") {
    EamOptions options;
    options.label = "HitCount";
    options.decision_overhead_sec = 0.0;  // Tracking ablation: isolate prediction quality.
    spec.cache_policy = "fMoE-PriorityLFU";
    spec.policy = std::make_unique<EamPolicy>(model, prefetch_distance, options);
    return spec;
  }
  if (name == "ProMoE") {
    spec.cache_policy = "LFU";
    spec.policy =
        std::make_unique<SpeculativePolicy>(model, ProMoeOptions(prefetch_distance));
    return spec;
  }
  if (name == "Speculate") {
    SpeculativeOptions options = ProMoeOptions(prefetch_distance);
    options.label = "Speculate";
    spec.cache_policy = "fMoE-PriorityLFU";
    spec.policy = std::make_unique<SpeculativePolicy>(model, options);
    return spec;
  }
  if (name == "Mixtral-Offloading") {
    spec.cache_policy = "LRU";
    spec.policy = std::make_unique<SpeculativePolicy>(model, MixtralOffloadingOptions());
    return spec;
  }
  if (name == "DeepSpeed-Inference") {
    spec.cache_policy = "LRU";
    spec.policy = std::make_unique<OnDemandPolicy>();
    return spec;
  }
  if (name == "No-offload") {
    spec.cache_policy = "LFU";
    spec.policy = std::make_unique<OnDemandPolicy>();
    spec.preload_all = true;
    return spec;
  }
  FMOE_CHECK_MSG(false, "unknown system: " << name);
}

std::vector<std::string> PaperSystemNames() {
  return {"DeepSpeed-Inference", "Mixtral-Offloading", "ProMoE", "MoE-Infinity", "fMoE"};
}

}  // namespace fmoe
