#include "src/harness/runner.h"

#include "src/util/thread_pool.h"

namespace fmoe {

ExperimentResult RunTask(const ExperimentTask& task, TraceRecorder* trace) {
  const ExperimentTask* run = &task;
  ExperimentTask traced;
  if (trace != nullptr) {
    traced = task;
    traced.options.trace = trace;
    run = &traced;
  }
  switch (run->mode) {
    case ExperimentMode::kOffline:
      return RunOffline(run->system, run->options);
    case ExperimentMode::kOnline:
      return RunOnline(run->system, run->options, run->trace, run->request_count);
    case ExperimentMode::kScheduled:
      return RunScheduled(run->system, run->options, run->trace, run->request_count,
                          run->scheduler);
    case ExperimentMode::kCluster:
      return RunCluster(run->system, run->options, run->trace, run->request_count);
  }
  return ExperimentResult{};  // Unreachable; all modes handled above.
}

std::vector<ExperimentResult> RunPlan(const ExperimentPlan& plan, const RunnerOptions& options,
                                      const std::function<void(size_t)>& on_done) {
  const std::vector<ExperimentTask>& tasks = plan.tasks();
  std::vector<ExperimentResult> results(tasks.size());
  const int jobs = options.jobs <= 0 ? ThreadPool::HardwareThreads() : options.jobs;
  // Each index writes only results[index]; ParallelForIndex runs inline (in plan order) at
  // jobs=1 and load-balances across a pool otherwise. Either way the returned vector is in
  // plan order, so downstream rendering cannot observe the execution schedule.
  ParallelForIndex(tasks.size(), jobs, [&](size_t index) {
    TraceRecorder* trace =
        (options.trace != nullptr && index == options.trace_task) ? options.trace : nullptr;
    results[index] = RunTask(tasks[index], trace);
    if (on_done) {
      on_done(index);
    }
  });
  return results;
}

}  // namespace fmoe
