#include "src/harness/experiment.h"

#include <algorithm>
#include <span>

#include "src/serving/engine.h"
#include "src/util/logging.h"

namespace fmoe {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

DatasetProfile ApplyCaps(DatasetProfile dataset, const ExperimentOptions& options) {
  if (options.max_decode_tokens > 0) {
    dataset.max_decode_tokens = options.max_decode_tokens;
  }
  return dataset;
}

EngineConfig MakeEngineConfig(const ExperimentOptions& options, const SystemSpec& spec) {
  EngineConfig config;
  config.prefetch_distance = options.prefetch_distance;
  config.gpu_count = options.gpu_count;
  config.expert_cache_bytes = spec.preload_all ? 0 : ResolveCacheBytes(options);
  config.cache_policy = spec.cache_policy;
  config.preload_all = spec.preload_all;
  config.frequency_decay = options.frequency_decay;
  config.placement = options.placement;
  config.gate = options.gate;
  config.hardware = options.hardware;
  config.seed = options.seed;
  config.matcher_latency_scale = options.matcher_latency_scale;
  config.matcher_queue_depth = options.matcher_queue_depth;
  config.tier = options.tier;
  config.trace = options.trace;
  return config;
}

SystemSpec MakeSystemFor(const std::string& system_name, const ExperimentOptions& options) {
  return MakeSystem(system_name, options.model, options.prefetch_distance,
                    options.store_capacity, options.low_precision_threshold,
                    options.map_precision, options.host_stage_candidates);
}

void FillResult(const std::string& system_name, const ExperimentOptions& options,
                const ServingEngine& engine, const SystemSpec& spec, ExperimentResult* result) {
  const RunMetrics& metrics = engine.metrics();
  result->system = system_name;
  result->mean_ttft = metrics.MeanTtft();
  result->mean_tpot = metrics.MeanTpot();
  result->hit_rate = metrics.HitRate();
  result->mean_e2e = metrics.MeanEndToEnd();
  result->iterations = metrics.iterations();
  result->breakdown = metrics.breakdown();
  result->deferred = metrics.deferred();
  result->cache_capacity_gb = static_cast<double>(engine.cache().capacity_bytes()) / kGiB;
  result->cache_used_gb = static_cast<double>(engine.cache().used_bytes()) / kGiB;
  result->request_latencies = metrics.EndToEndLatencies();
  result->low_precision_share = metrics.LowPrecisionShare();
  if (engine.store().enabled()) {
    result->tier_enabled = true;
    result->tier = engine.store().stats();
    result->host_capacity_gb =
        static_cast<double>(engine.store().host().capacity_bytes()) / kGiB;
    result->host_used_gb = static_cast<double>(engine.store().host().used_bytes()) / kGiB;
  }
  if (options.keep_iteration_records) {
    result->iteration_records = metrics.iteration_records();
  }
  if (const auto* fmoe_policy = dynamic_cast<const FmoePolicy*>(spec.policy.get())) {
    result->mean_semantic_score = fmoe_policy->MeanSemanticScore();
    result->mean_trajectory_score = fmoe_policy->MeanTrajectoryScore();
    if (options.enable_score_log) {
      result->score_log = fmoe_policy->score_log();
    }
  }
}

}  // namespace

uint64_t ResolveCacheBytes(const ExperimentOptions& options) {
  if (options.cache_bytes != 0) {
    return options.cache_bytes;
  }
  const double total = static_cast<double>(options.model.total_expert_bytes());
  return static_cast<uint64_t>(total * options.cache_fraction);
}

ExperimentResult RunOffline(const std::string& system_name, const ExperimentOptions& options) {
  WorkloadGenerator generator(ApplyCaps(options.dataset, options), options.seed);
  std::vector<Request> requests =
      generator.Generate(options.history_requests + options.test_requests);
  WorkloadSplit split = SplitWorkload(
      std::move(requests),
      static_cast<double>(options.history_requests) /
          static_cast<double>(options.history_requests + options.test_requests));

  SystemSpec spec = MakeSystemFor(system_name, options);
  auto* fmoe_policy = dynamic_cast<FmoePolicy*>(spec.policy.get());
  ServingEngine engine(options.model, MakeEngineConfig(options, spec), spec.policy.get());
  engine.WarmupWithHistory(split.history);
  if (fmoe_policy != nullptr && options.enable_score_log) {
    fmoe_policy->EnableScoreLog();
  }

  const int batch = std::max(options.batch_size, 1);
  for (size_t i = 0; i < split.test.size(); i += static_cast<size_t>(batch)) {
    const size_t count = std::min(static_cast<size_t>(batch), split.test.size() - i);
    engine.ServeBatch(std::span<const Request>(split.test.data() + i, count));
  }

  ExperimentResult result;
  FillResult(system_name, options, engine, spec, &result);
  return result;
}

ExperimentResult RunOnline(const std::string& system_name, const ExperimentOptions& options,
                           const TraceProfile& trace, size_t request_count) {
  TraceGenerator generator(trace, ApplyCaps(options.dataset, options), options.seed);
  const std::vector<Request> requests = generator.Generate(request_count);

  SystemSpec spec = MakeSystemFor(system_name, options);
  ServingEngine engine(options.model, MakeEngineConfig(options, spec), spec.policy.get());
  // Online protocol: empty history (§6.3) — serve straight off the trace, FIFO.
  for (const Request& request : requests) {
    engine.ServeRequest(request);
  }

  ExperimentResult result;
  FillResult(system_name, options, engine, spec, &result);
  return result;
}

ExperimentResult RunScheduled(const std::string& system_name, const ExperimentOptions& options,
                              const TraceProfile& trace, size_t request_count,
                              const SchedulerOptions& sched) {
  TraceGenerator generator(trace, ApplyCaps(options.dataset, options), options.seed);
  const std::vector<Request> requests = generator.Generate(request_count);

  SystemSpec spec = MakeSystemFor(system_name, options);
  ServingEngine engine(options.model, MakeEngineConfig(options, spec), spec.policy.get());
  ContinuousBatchScheduler scheduler(&engine, sched);
  const std::vector<RequestMetrics> completed = scheduler.Run(requests);

  ExperimentResult result;
  FillResult(system_name, options, engine, spec, &result);
  result.scheduler_stats = scheduler.stats();
  // The scheduler owns request completion: its drained metrics (completion order) replace the
  // engine-side per-request view, and end-to-end latencies include queueing.
  result.request_latencies.clear();
  result.scheduled_tokens = 0;
  double e2e_sum = 0.0;
  for (const RequestMetrics& metrics : completed) {
    result.request_latencies.push_back(metrics.EndToEnd());
    e2e_sum += metrics.EndToEnd();
    result.scheduled_tokens += static_cast<uint64_t>(metrics.decode_iterations) + 1;
  }
  result.mean_e2e =
      completed.empty() ? 0.0 : e2e_sum / static_cast<double>(completed.size());
  return result;
}

ExperimentResult RunReplay(const std::string& system_name, const ExperimentOptions& options,
                           const std::vector<Request>& requests) {
  SystemSpec spec = MakeSystemFor(system_name, options);
  ServingEngine engine(options.model, MakeEngineConfig(options, spec), spec.policy.get());
  for (const Request& request : requests) {
    engine.ServeRequest(request);
  }

  ExperimentResult result;
  FillResult(system_name, options, engine, spec, &result);
  return result;
}

}  // namespace fmoe
