#include "src/harness/experiment.h"

#include <algorithm>
#include <memory>
#include <span>
#include <string>

#include "src/serving/engine.h"
#include "src/util/logging.h"

namespace fmoe {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

DatasetProfile ApplyCaps(DatasetProfile dataset, const ExperimentOptions& options) {
  if (options.max_decode_tokens > 0) {
    dataset.max_decode_tokens = options.max_decode_tokens;
  }
  return dataset;
}

EngineConfig MakeEngineConfig(const ExperimentOptions& options, const SystemSpec& spec) {
  EngineConfig config;
  config.prefetch_distance = options.prefetch_distance;
  config.gpu_count = options.gpu_count;
  config.expert_cache_bytes = spec.preload_all ? 0 : ResolveCacheBytes(options);
  config.cache_policy = spec.cache_policy;
  config.preload_all = spec.preload_all;
  config.frequency_decay = options.frequency_decay;
  config.placement = options.placement;
  config.gate = options.gate;
  config.hardware = options.hardware;
  config.seed = options.seed;
  config.matcher_latency_scale = options.matcher_latency_scale;
  config.matcher_queue_depth = options.matcher_queue_depth;
  config.tier = options.tier;
  config.trace = options.trace;
  return config;
}

SystemSpec MakeSystemFor(const std::string& system_name, const ExperimentOptions& options) {
  return MakeSystem(system_name, options.model, options.prefetch_distance,
                    options.store_capacity, options.low_precision_threshold,
                    options.map_precision, options.host_stage_candidates,
                    options.map_shards);
}

// `oracle_recorder` is the engine's gate-decision tape when options.oracle is on (null
// otherwise); the clairvoyant replay runs here, after the engine has finished the window.
void FillResult(const std::string& system_name, const ExperimentOptions& options,
                const ServingEngine& engine, const SystemSpec& spec,
                const GateDecisionRecorder* oracle_recorder, ExperimentResult* result) {
  const RunMetrics& metrics = engine.metrics();
  result->system = system_name;
  result->mean_ttft = metrics.MeanTtft();
  result->mean_tpot = metrics.MeanTpot();
  result->hit_rate = metrics.HitRate();
  result->mean_e2e = metrics.MeanEndToEnd();
  result->iterations = metrics.iterations();
  result->breakdown = metrics.breakdown();
  result->deferred = metrics.deferred();
  result->cache_capacity_gb = static_cast<double>(engine.cache().capacity_bytes()) / kGiB;
  result->cache_used_gb = static_cast<double>(engine.cache().used_bytes()) / kGiB;
  result->request_latencies = metrics.EndToEndLatencies();
  result->low_precision_share = metrics.LowPrecisionShare();
  if (engine.store().enabled()) {
    result->tier_enabled = true;
    result->tier = engine.store().stats();
    result->host_capacity_gb =
        static_cast<double>(engine.store().host().capacity_bytes()) / kGiB;
    result->host_used_gb = static_cast<double>(engine.store().host().used_bytes()) / kGiB;
  }
  if (options.keep_iteration_records) {
    result->iteration_records = metrics.iteration_records();
  }
  if (const auto* fmoe_policy = dynamic_cast<const FmoePolicy*>(spec.policy.get())) {
    result->mean_semantic_score = fmoe_policy->MeanSemanticScore();
    result->mean_trajectory_score = fmoe_policy->MeanTrajectoryScore();
    if (options.enable_score_log) {
      result->score_log = fmoe_policy->score_log();
    }
  }
  if (oracle_recorder != nullptr) {
    result->oracle_enabled = true;
    OracleConfig oracle_config;
    oracle_config.expert_bytes = options.model.expert_bytes;
    oracle_config.link = engine.config().gpu.link;
    result->oracle = ComputeOracleReport(*oracle_recorder, oracle_config,
                                         metrics.breakdown().demand_stall);
  }
}

// Serves `request` on `engine`, first offering it to `controller` (may be null) for SLO
// shedding against the wait it has already accrued. Returns true when it was served. This is
// the cluster-side admission point: RunCluster serves routed arrivals back to back, so the
// only admission decision is shed-or-serve (batch limits belong to the scheduler protocol).
bool ServeWithAdmission(ServingEngine* engine, AdmissionController* controller,
                        const Request& request) {
  if (controller == nullptr) {
    engine->ServeRequest(request);
    return true;
  }
  controller->OnArrived();
  const double now = std::max(engine->now(), request.arrival_time);
  controller->BeginAdmission(now);
  if (controller->ShouldReject(request, now)) {
    controller->OnRejected();
    return false;
  }
  engine->ServeRequest(request);
  controller->OnAdmitted();
  return true;
}

}  // namespace

uint64_t ResolveCacheBytes(const ExperimentOptions& options) {
  if (options.cache_bytes != 0) {
    return options.cache_bytes;
  }
  const double total = static_cast<double>(options.model.total_expert_bytes());
  return static_cast<uint64_t>(total * options.cache_fraction);
}

ExperimentResult RunOffline(const std::string& system_name, const ExperimentOptions& options) {
  WorkloadGenerator generator(ApplyCaps(options.dataset, options), options.seed);
  std::vector<Request> requests =
      generator.Generate(options.history_requests + options.test_requests);
  WorkloadSplit split = SplitWorkload(
      std::move(requests),
      static_cast<double>(options.history_requests) /
          static_cast<double>(options.history_requests + options.test_requests));

  SystemSpec spec = MakeSystemFor(system_name, options);
  auto* fmoe_policy = dynamic_cast<FmoePolicy*>(spec.policy.get());
  ServingEngine engine(options.model, MakeEngineConfig(options, spec), spec.policy.get());
  GateDecisionRecorder oracle_recorder;
  if (options.oracle) {
    // Attached before warmup: the post-warmup metrics reset clears the tape, so it covers
    // exactly the measured requests (same window as the trace recorder).
    engine.SetOracleRecorder(&oracle_recorder);
  }
  engine.WarmupWithHistory(split.history);
  if (fmoe_policy != nullptr && options.enable_score_log) {
    fmoe_policy->EnableScoreLog();
  }

  const int batch = std::max(options.batch_size, 1);
  for (size_t i = 0; i < split.test.size(); i += static_cast<size_t>(batch)) {
    const size_t count = std::min(static_cast<size_t>(batch), split.test.size() - i);
    engine.ServeBatch(std::span<const Request>(split.test.data() + i, count));
  }

  ExperimentResult result;
  FillResult(system_name, options, engine, spec,
             options.oracle ? &oracle_recorder : nullptr, &result);
  return result;
}

ExperimentResult RunOnline(const std::string& system_name, const ExperimentOptions& options,
                           const TraceProfile& trace, size_t request_count) {
  TraceGenerator generator(trace, ApplyCaps(options.dataset, options), options.seed);
  const std::vector<Request> requests = generator.Generate(request_count);

  SystemSpec spec = MakeSystemFor(system_name, options);
  ServingEngine engine(options.model, MakeEngineConfig(options, spec), spec.policy.get());
  GateDecisionRecorder oracle_recorder;
  if (options.oracle) {
    engine.SetOracleRecorder(&oracle_recorder);
  }
  // Online protocol: empty history (§6.3) — serve straight off the trace, FIFO.
  for (const Request& request : requests) {
    engine.ServeRequest(request);
  }

  ExperimentResult result;
  FillResult(system_name, options, engine, spec,
             options.oracle ? &oracle_recorder : nullptr, &result);
  return result;
}

ExperimentResult RunScheduledReplay(const std::string& system_name,
                                    const ExperimentOptions& options,
                                    const std::vector<Request>& requests,
                                    const SchedulerOptions& sched) {
  SystemSpec spec = MakeSystemFor(system_name, options);
  ServingEngine engine(options.model, MakeEngineConfig(options, spec), spec.policy.get());
  GateDecisionRecorder oracle_recorder;
  if (options.oracle) {
    engine.SetOracleRecorder(&oracle_recorder);
  }
  ContinuousBatchScheduler scheduler(&engine, sched);
  const std::vector<RequestMetrics> completed = scheduler.Run(requests);

  ExperimentResult result;
  FillResult(system_name, options, engine, spec,
             options.oracle ? &oracle_recorder : nullptr, &result);
  result.scheduler_stats = scheduler.stats();
  if (sched.admission.policy != AdmissionPolicyKind::kOpenLoop) {
    result.admission_enabled = true;
    result.admission_policy = sched.admission.policy;
    result.admission = scheduler.controller().counters();
  }
  // The scheduler owns request completion: its drained metrics (completion order) replace the
  // engine-side per-request view, and end-to-end latencies include queueing.
  result.request_latencies.clear();
  result.scheduled_tokens = 0;
  double e2e_sum = 0.0;
  for (const RequestMetrics& metrics : completed) {
    result.request_latencies.push_back(metrics.EndToEnd());
    e2e_sum += metrics.EndToEnd();
    result.scheduled_tokens += static_cast<uint64_t>(metrics.decode_iterations) + 1;
  }
  result.mean_e2e =
      completed.empty() ? 0.0 : e2e_sum / static_cast<double>(completed.size());
  return result;
}

ExperimentResult RunScheduled(const std::string& system_name, const ExperimentOptions& options,
                              const TraceProfile& trace, size_t request_count,
                              const SchedulerOptions& sched) {
  TraceGenerator generator(trace, ApplyCaps(options.dataset, options), options.seed);
  return RunScheduledReplay(system_name, options, generator.Generate(request_count), sched);
}

ExperimentResult RunCluster(const std::string& system_name, const ExperimentOptions& options,
                            const TraceProfile& trace, size_t request_count) {
  TraceGenerator generator(trace, ApplyCaps(options.dataset, options), options.seed);
  const std::vector<Request> requests = generator.Generate(request_count);

  const int replicas = std::max(options.replicas, 1);
  if (replicas == 1) {
    // Single replica: serve exactly as RunOnline would (same engine, same loop), so the
    // default configuration replays today's behaviour bit for bit. A closed-loop admission
    // policy adds a shed-or-serve gate in front of each arrival (open loop leaves the engine
    // fully detached).
    SystemSpec spec = MakeSystemFor(system_name, options);
    ServingEngine engine(options.model, MakeEngineConfig(options, spec), spec.policy.get());
    GateDecisionRecorder oracle_recorder;
    if (options.oracle) {
      engine.SetOracleRecorder(&oracle_recorder);
    }
    std::unique_ptr<AdmissionController> controller;
    if (options.admission.policy != AdmissionPolicyKind::kOpenLoop) {
      controller = MakeAdmissionController(options.admission);
      engine.SetAdmissionController(controller.get());
    }
    size_t served = 0;
    for (const Request& request : requests) {
      if (ServeWithAdmission(&engine, controller.get(), request)) {
        ++served;
      }
    }
    engine.SetAdmissionController(nullptr);
    ExperimentResult result;
    FillResult(system_name, options, engine, spec,
               options.oracle ? &oracle_recorder : nullptr, &result);
    if (controller != nullptr) {
      result.admission_enabled = true;
      result.admission_policy = options.admission.policy;
      result.admission = controller->counters();
    }
    result.cluster.replicas = 1;
    result.cluster.router = options.router_policy;
    result.cluster.memory = options.cluster_memory;
    ClusterReplicaStats stats;
    stats.requests = served;
    stats.iterations = result.iterations;
    stats.mean_e2e = result.mean_e2e;
    stats.hit_rate = result.hit_rate;
    stats.busy_until = engine.now();
    result.cluster.makespan = engine.now();
    result.cluster.aggregate_throughput_rps =
        engine.now() > 0.0 ? static_cast<double>(served) / engine.now() : 0.0;
    result.cluster.replica_stats.push_back(stats);
    return result;
  }

  ClusterOptions cluster_options;
  cluster_options.replicas = replicas;
  cluster_options.router = options.router_policy;
  cluster_options.memory = options.cluster_memory;

  std::vector<SystemSpec> specs;
  std::vector<std::unique_ptr<ServingEngine>> engines;
  // One tape per replica (each engine is its own cache + links); the per-replica gap
  // reports are summed into one merged block below.
  std::vector<GateDecisionRecorder> oracle_recorders(
      options.oracle ? static_cast<size_t>(replicas) : 0);
  specs.reserve(static_cast<size_t>(replicas));
  engines.reserve(static_cast<size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    specs.push_back(MakeSystemFor(system_name, options));
    EngineConfig config = MakeEngineConfig(options, specs.back());
    // Traces attach to replica 0 only (one timeline per recorder); its tracks carry the
    // replica prefix so cluster traces are distinguishable from single-engine ones.
    config.trace_track_prefix = "replica" + std::to_string(r) + "/";
    if (r > 0) {
      config.trace = nullptr;
    }
    if (options.cluster_memory == ClusterMemoryMode::kPartition && !specs.back().preload_all) {
      config.expert_cache_bytes =
          std::max<uint64_t>(config.expert_cache_bytes / static_cast<uint64_t>(replicas), 1);
    }
    engines.push_back(std::make_unique<ServingEngine>(options.model, config,
                                                      specs.back().policy.get()));
    if (options.oracle) {
      engines.back()->SetOracleRecorder(&oracle_recorders[static_cast<size_t>(r)]);
    }
  }

  // Per-replica controllers (closed-loop policies only): each replica's controller sees only
  // its routed arrivals and drives only that engine's knobs, composing with the router.
  std::vector<std::unique_ptr<AdmissionController>> controllers(
      static_cast<size_t>(replicas));
  if (options.admission.policy != AdmissionPolicyKind::kOpenLoop) {
    for (int r = 0; r < replicas; ++r) {
      controllers[static_cast<size_t>(r)] = MakeAdmissionController(options.admission);
      engines[static_cast<size_t>(r)]->SetAdmissionController(
          controllers[static_cast<size_t>(r)].get());
    }
  }

  RequestRouter router(cluster_options, options.seed ^ kSemanticRouterSeed);
  std::vector<ReplicaLoad> loads(static_cast<size_t>(replicas));
  std::vector<int> assignment(requests.size(), 0);
  for (size_t i = 0; i < requests.size(); ++i) {
    std::vector<double> prompt_embedding;
    if (options.router_policy == RouterPolicy::kSemanticAffinity) {
      prompt_embedding = engines[0]->embedder().PromptEmbedding(requests[i].routing);
    }
    const int r = router.Route(requests[i], prompt_embedding, loads);
    assignment[i] = r;
    if (!ServeWithAdmission(engines[static_cast<size_t>(r)].get(),
                            controllers[static_cast<size_t>(r)].get(), requests[i])) {
      assignment[i] = -1;  // Shed at the replica door: no latency to merge, no load charged.
      continue;
    }
    loads[static_cast<size_t>(r)].busy_until = engines[static_cast<size_t>(r)]->now();
    ++loads[static_cast<size_t>(r)].assigned;
  }
  for (int r = 0; r < replicas; ++r) {
    engines[static_cast<size_t>(r)]->SetAdmissionController(nullptr);
  }

  // Merge: arrival-order latencies (walk the assignment with per-replica cursors — each
  // replica served its subset in arrival order), counter sums, and count-weighted means.
  ExperimentResult result;
  result.system = system_name;
  result.cluster_enabled = true;
  result.cluster.replicas = replicas;
  result.cluster.router = options.router_policy;
  result.cluster.memory = options.cluster_memory;

  std::vector<std::vector<double>> replica_latencies;
  std::vector<size_t> cursor(static_cast<size_t>(replicas), 0);
  double ttft_weighted = 0.0;
  double tpot_weighted = 0.0;
  double e2e_sum = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t low_precision_hits = 0;
  size_t total_requests = 0;
  uint64_t total_iterations = 0;
  double semantic_weighted = 0.0;
  double trajectory_weighted = 0.0;
  double low_precision_weighted = 0.0;
  double cache_capacity_gb = 0.0;
  double cache_used_gb = 0.0;
  for (int r = 0; r < replicas; ++r) {
    const ServingEngine& engine = *engines[static_cast<size_t>(r)];
    const RunMetrics& metrics = engine.metrics();
    replica_latencies.push_back(metrics.EndToEndLatencies());
    const size_t served = metrics.requests().size();
    ttft_weighted += metrics.MeanTtft() * static_cast<double>(served);
    tpot_weighted += metrics.MeanTpot() * static_cast<double>(metrics.iterations());
    for (const double latency : replica_latencies.back()) {
      e2e_sum += latency;
    }
    hits += metrics.expert_hits();
    misses += metrics.expert_misses();
    low_precision_hits += metrics.low_precision_hits();
    total_requests += served;
    total_iterations += metrics.iterations();
    result.breakdown.Accumulate(metrics.breakdown());
    const DeferredPipelineStats& deferred = metrics.deferred();
    result.deferred.published += deferred.published;
    result.deferred.applied += deferred.applied;
    result.deferred.superseded += deferred.superseded;
    result.deferred.dropped += deferred.dropped;
    result.deferred.blocking += deferred.blocking;
    result.deferred.modeled_work_s += deferred.modeled_work_s;
    result.deferred.overlapped_s += deferred.overlapped_s;
    result.deferred.wasted_work_s += deferred.wasted_work_s;
    result.deferred.queue_wait_s += deferred.queue_wait_s;
    result.deferred.decision_latency_s += deferred.decision_latency_s;
    cache_capacity_gb += static_cast<double>(engine.cache().capacity_bytes()) / kGiB;
    cache_used_gb += static_cast<double>(engine.cache().used_bytes()) / kGiB;
    if (const auto* fmoe_policy =
            dynamic_cast<const FmoePolicy*>(specs[static_cast<size_t>(r)].policy.get())) {
      semantic_weighted +=
          fmoe_policy->MeanSemanticScore() * static_cast<double>(metrics.iterations());
      trajectory_weighted +=
          fmoe_policy->MeanTrajectoryScore() * static_cast<double>(metrics.iterations());
    }
    low_precision_weighted += metrics.LowPrecisionShare() *
                              static_cast<double>(metrics.expert_hits() +
                                                  metrics.expert_misses());

    ClusterReplicaStats stats;
    stats.replica = r;
    stats.requests = served;
    stats.iterations = metrics.iterations();
    stats.mean_e2e = metrics.MeanEndToEnd();
    stats.hit_rate = metrics.HitRate();
    stats.busy_until = engine.now();
    result.cluster.makespan = std::max(result.cluster.makespan, engine.now());
    result.cluster.replica_stats.push_back(stats);
    if (options.oracle) {
      // Each replica's tape replays against its own cache and links; the merged block sums
      // the counters and recomputes the gaps over the whole cluster.
      result.oracle_enabled = true;
      OracleConfig oracle_config;
      oracle_config.expert_bytes = options.model.expert_bytes;
      oracle_config.link = engine.config().gpu.link;
      AccumulateOracleReport(
          &result.oracle,
          ComputeOracleReport(oracle_recorders[static_cast<size_t>(r)], oracle_config,
                              metrics.breakdown().demand_stall));
    }
  }
  result.request_latencies.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (assignment[i] < 0) {
      continue;  // Shed before service: contributes a rejection, not a latency.
    }
    const auto r = static_cast<size_t>(assignment[i]);
    FMOE_CHECK(cursor[r] < replica_latencies[r].size());
    result.request_latencies.push_back(replica_latencies[r][cursor[r]++]);
  }
  if (options.admission.policy != AdmissionPolicyKind::kOpenLoop) {
    result.admission_enabled = true;
    result.admission_policy = options.admission.policy;
    for (const auto& controller : controllers) {
      result.admission.arrived += controller->counters().arrived;
      result.admission.admitted += controller->counters().admitted;
      result.admission.rejected += controller->counters().rejected;
    }
  }
  result.mean_ttft =
      total_requests == 0 ? 0.0 : ttft_weighted / static_cast<double>(total_requests);
  result.mean_tpot =
      total_iterations == 0 ? 0.0 : tpot_weighted / static_cast<double>(total_iterations);
  result.mean_e2e =
      total_requests == 0 ? 0.0 : e2e_sum / static_cast<double>(total_requests);
  const uint64_t servings = hits + misses;
  result.hit_rate =
      servings == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(servings);
  result.low_precision_share =
      servings == 0 ? 0.0
                    : low_precision_weighted / static_cast<double>(servings);
  result.iterations = total_iterations;
  result.cache_capacity_gb = cache_capacity_gb;
  result.cache_used_gb = cache_used_gb;
  result.mean_semantic_score =
      total_iterations == 0 ? 0.0
                            : semantic_weighted / static_cast<double>(total_iterations);
  result.mean_trajectory_score =
      total_iterations == 0 ? 0.0
                            : trajectory_weighted / static_cast<double>(total_iterations);
  result.cluster.aggregate_throughput_rps =
      result.cluster.makespan > 0.0
          ? static_cast<double>(total_requests) / result.cluster.makespan
          : 0.0;
  return result;
}

ExperimentResult RunReplay(const std::string& system_name, const ExperimentOptions& options,
                           const std::vector<Request>& requests) {
  SystemSpec spec = MakeSystemFor(system_name, options);
  ServingEngine engine(options.model, MakeEngineConfig(options, spec), spec.policy.get());
  GateDecisionRecorder oracle_recorder;
  if (options.oracle) {
    engine.SetOracleRecorder(&oracle_recorder);
  }
  for (const Request& request : requests) {
    engine.ServeRequest(request);
  }

  ExperimentResult result;
  FillResult(system_name, options, engine, spec,
             options.oracle ? &oracle_recorder : nullptr, &result);
  return result;
}

}  // namespace fmoe
