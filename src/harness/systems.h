// Registry of the five serving systems compared in the paper's evaluation (§6.1) plus the
// ablation variants of §6.5. Every system is an OffloadPolicy implementation paired with its
// cache eviction algorithm; the experiment runners build engines from these specs so all
// comparisons share one mechanism.
#ifndef FMOE_SRC_HARNESS_SYSTEMS_H_
#define FMOE_SRC_HARNESS_SYSTEMS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/map_store.h"
#include "src/moe/model_config.h"
#include "src/serving/policy.h"

namespace fmoe {

struct SystemSpec {
  std::string name;
  std::string cache_policy;  // Eviction algorithm (see eviction_policy.h).
  std::unique_ptr<OffloadPolicy> policy;
  bool preload_all = false;  // No-offload reference configuration.
};

// Builds a system by name. Supported:
//   "fMoE"                — full system (Map T+S+δ search, PriorityLFU cache).
//   "MoE-Infinity"        — request-level EAM, LFU cache, synchronous decisions.
//   "ProMoE"              — async stride-speculative prefetching, LFU cache.
//   "Mixtral-Offloading"  — synchronous distance-1 speculation, LRU cache.
//   "DeepSpeed-Inference" — pure on-demand, LRU cache.
//   "No-offload"          — all experts resident (reference point in Fig. 1b).
// Ablation variants (Fig. 12):
//   "Map(T)"              — trajectory-only search.
//   "Map(T+S)"            — + semantic search, fixed top-(K+1) selection.
//   "Map(T+S+d)"          — + dynamic δ threshold (== full fMoE prefetching).
//   "Speculate"           — speculative tracking at the engine prefetch distance.
//   "HitCount"            — request-level hit-count tracking (EAM machinery).
//   "fMoE-LRU" / "fMoE-LFU" — full fMoE search with baseline caches (Fig. 12b).
//   "fMoE-FIFOStore"      — full fMoE with FIFO store replacement instead of RDY dedup.
// `fmoe_store_capacity` sizes the Expert Map Store of fMoE-family systems (1K is the paper's
// operating point; experiments shrink it for speed or sweep it for sensitivity).
// `low_precision_threshold` enables the Hobbit-style mixed-precision extension for
// fMoE-family systems (0, the default, is the paper's lossless behaviour).
// `map_precision` selects the Expert Map Store's column storage precision (DESIGN.md §5g);
// it applies to every fMoE-family system and is a no-op for the baselines, which keep no map
// store (EAM tracks hit counts, speculative/on-demand keep no history at all).
// `host_stage_candidates` enables tier-aware prefetch for fMoE-family systems on multi-tier
// engines: the top N scored-but-not-selected map candidates per matched layer are staged
// NVMe→host speculatively. No-op (bit-identical) on two-tier engines and for baselines.
// `map_shards` splits the Expert Map Store into semantic-cluster shards (DESIGN.md §5i);
// 1 (the default) is byte-identical to the unsharded store and is a no-op for baselines.
SystemSpec MakeSystem(const std::string& name, const ModelConfig& model, int prefetch_distance,
                      size_t fmoe_store_capacity = 1000,
                      double low_precision_threshold = 0.0,
                      MapPrecision map_precision = MapPrecision::kFp32,
                      int host_stage_candidates = 0,
                      int map_shards = 1);

// The five systems of Figs. 9-11, worst-to-best order used in the paper's plots.
std::vector<std::string> PaperSystemNames();

}  // namespace fmoe

#endif  // FMOE_SRC_HARNESS_SYSTEMS_H_
