#include "src/core/prefetcher.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/math.h"

namespace fmoe {

double SelectionThreshold(double score) { return Clip(1.0 - score, 0.0, 1.0); }

std::vector<PrefetchCandidate> SelectExperts(std::span<const double> probs, double score,
                                             int top_k, int target_layer, int current_layer,
                                             const PrefetcherOptions& options) {
  FMOE_CHECK(target_layer > current_layer);
  const size_t min_count =
      static_cast<size_t>(top_k) + static_cast<size_t>(std::max(options.min_extra_experts, 0));
  const double threshold = options.dynamic_threshold ? SelectionThreshold(score) : 0.0;
  const std::vector<size_t> picked = MassCoverIndices(probs, threshold, min_count);

  const double distance = static_cast<double>(target_layer - current_layer);
  std::vector<PrefetchCandidate> candidates;
  candidates.reserve(picked.size());
  for (size_t idx : picked) {
    PrefetchCandidate candidate;
    candidate.expert = static_cast<int>(idx);
    candidate.probability = probs[idx];
    candidate.priority = probs[idx] / distance;
    candidates.push_back(candidate);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PrefetchCandidate& a, const PrefetchCandidate& b) {
              if (a.priority != b.priority) {
                return a.priority > b.priority;
              }
              return a.expert < b.expert;
            });
  return candidates;
}

}  // namespace fmoe
