#include "src/core/map_store.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/math.h"
#include "src/util/thread_pool.h"

namespace fmoe {
namespace {

// Partitions [0, count) into contiguous chunks and runs `fn(begin, end)` on each, using up to
// `threads` workers of the process-wide scan pool (the calling thread contributes one chunk).
// Chunks are fixed by count/threads alone, and callers reduce the per-row outputs in row
// order afterwards, so the result is independent of scheduling — and identical to the old
// per-call std::thread spawning this replaced, minus the thread create/join per scan.
template <typename Fn>
void RunPartitioned(size_t count, int threads, Fn&& fn) {
  constexpr size_t kMinRowsPerThread = 512;
  const size_t max_workers = count / kMinRowsPerThread;
  const size_t workers = std::min<size_t>(static_cast<size_t>(threads), max_workers);
  if (workers <= 1) {
    fn(size_t{0}, count);
    return;
  }
  SharedScanPool().RunChunks(count, workers,
                             [&fn](size_t begin, size_t end) { fn(begin, end); });
}

void UpdateBest(SearchResult* best, size_t index, double score) {
  if (!best->found || score > best->score) {  // Strict >: lowest index wins ties.
    best->found = true;
    best->index = index;
    best->score = score;
  }
}

std::vector<float> ToFloat(std::span<const double> values) {
  std::vector<float> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<float>(values[i]);
  }
  return out;
}

uint8_t EncodeQ8(float v, float scale, float offset) {
  if (scale <= 0.0f) {
    return 0;  // Constant column: every value is `offset` exactly.
  }
  const float q = std::round((v - offset) / scale);
  return static_cast<uint8_t>(std::clamp(q, 0.0f, 255.0f));
}

}  // namespace

const char* MapPrecisionName(MapPrecision precision) {
  switch (precision) {
    case MapPrecision::kFp32:
      return "fp32";
    case MapPrecision::kFp16:
      return "fp16";
    case MapPrecision::kInt8:
      return "int8";
  }
  return "fp32";
}

bool ParseMapPrecision(std::string_view text, MapPrecision* out) {
  if (text == "fp32") {
    *out = MapPrecision::kFp32;
  } else if (text == "fp16") {
    *out = MapPrecision::kFp16;
  } else if (text == "int8") {
    *out = MapPrecision::kInt8;
  } else {
    return false;
  }
  return true;
}

ExpertMapStore::ExpertMapStore(const ModelConfig& model, size_t capacity, int prefetch_distance,
                               StoreDedupPolicy dedup, MapPrecision precision)
    : model_(model),
      capacity_(capacity),
      prefetch_distance_(prefetch_distance),
      dedup_(dedup),
      precision_(precision),
      map_dim_(model.num_layers * model.experts_per_layer) {
  FMOE_CHECK(capacity > 0);
  FMOE_CHECK(prefetch_distance >= 0 && prefetch_distance <= model.num_layers);
  records_.reserve(capacity);
  // The column matrix has a fixed stride of `capacity` values, so it is sized once up front;
  // slots past size() are never read (every scan is bounded by size()). Exactly one of the
  // three precision variants is allocated.
  const size_t cols = capacity * static_cast<size_t>(map_dim_);
  switch (precision_) {
    case MapPrecision::kFp32:
      map_cols_.resize(cols, 0.0f);
      break;
    case MapPrecision::kFp16:
      map_cols16_.resize(cols, 0);
      break;
    case MapPrecision::kInt8:
      map_cols8_.resize(cols, 0);
      // Ranges start collapsed at 0 (scale 0 == "column is constant 0"); the first nonzero
      // value in a column widens its range via RequantizeColumn, so each column's grid adapts
      // to that column's actual magnitude (hot-expert columns near 1, cold ones near 0).
      col_scales_.assign(static_cast<size_t>(map_dim_), 0.0f);
      col_offsets_.assign(static_cast<size_t>(map_dim_), 0.0f);
      col_range_lo_.assign(static_cast<size_t>(map_dim_), 0.0f);
      col_range_hi_.assign(static_cast<size_t>(map_dim_), 0.0f);
      break;
  }
  map_rows_.reserve(cols);
  prefix_sqnorms_.reserve(capacity * static_cast<size_t>(model.num_layers + 1));
  inv_prefix_norms_.reserve(capacity * static_cast<size_t>(model.num_layers + 1));
}

const StoredIteration& ExpertMapStore::Get(size_t index) const {
  FMOE_CHECK(index < records_.size());
  return records_[index];
}

std::span<const float> ExpertMapStore::MapRow(size_t index) const {
  FMOE_CHECK(index < records_.size());
  return std::span<const float>(map_rows_.data() + index * static_cast<size_t>(map_dim_),
                                static_cast<size_t>(map_dim_));
}

std::span<const float> ExpertMapStore::EmbeddingRow(size_t index) const {
  FMOE_CHECK(index < records_.size());
  return std::span<const float>(emb_rows_.data() + index * emb_stride_, emb_dims_[index]);
}

size_t ExpertMapStore::EmbeddingDim(size_t index) const {
  FMOE_CHECK(index < records_.size());
  return emb_dims_[index];
}

double ExpertMapStore::EmbeddingNorm(size_t index) const {
  FMOE_CHECK(index < records_.size());
  return emb_norms_[index];
}

double ExpertMapStore::PrefixNorm(size_t index, int prefix_layers) const {
  FMOE_CHECK(index < records_.size());
  FMOE_CHECK(prefix_layers >= 0 && prefix_layers <= model_.num_layers);
  return std::sqrt(
      prefix_sqnorms_[index * static_cast<size_t>(model_.num_layers + 1) +
                      static_cast<size_t>(prefix_layers)]);
}

void ExpertMapStore::set_search_threads(int threads) {
  FMOE_CHECK(threads >= 1);
  search_threads_ = threads;
}

void ExpertMapStore::ScanMapColumns(std::span<const float> coeffs, size_t first_col,
                                    size_t begin, size_t end, const Q8Coeffs* folded,
                                    double* out) const {
  FMOE_CHECK(first_col + coeffs.size() <= static_cast<size_t>(map_dim_));
  FMOE_CHECK(begin <= end && end <= records_.size());
  const size_t base = first_col * capacity_ + begin;
  switch (precision_) {
    case MapPrecision::kFp32:
      AccumulateColumns(coeffs, map_cols_.data() + base, capacity_, end - begin, out);
      break;
    case MapPrecision::kFp16:
      AccumulateColumnsF16(coeffs, map_cols16_.data() + base, capacity_, end - begin, out);
      break;
    case MapPrecision::kInt8:
      FMOE_CHECK(folded != nullptr && folded->q.size() == coeffs.size());
      AccumulateColumnsQ8(*folded, map_cols8_.data() + base, capacity_, end - begin, out);
      break;
  }
}

void ExpertMapStore::FoldQ8ScanCoeffs(std::span<const float> coeffs, size_t first_col,
                                      Q8Coeffs* folded) const {
  if (precision_ != MapPrecision::kInt8) {
    return;
  }
  FMOE_CHECK(first_col + coeffs.size() <= static_cast<size_t>(map_dim_));
  FoldQ8Coeffs(coeffs, col_scales_.data() + first_col, col_offsets_.data() + first_col,
               folded);
}

void ExpertMapStore::GrowEmbeddingStride(size_t dim) {
  if (dim <= emb_stride_) {
    return;
  }
  std::vector<float> repacked(records_.size() * dim, 0.0f);
  for (size_t i = 0; i < records_.size(); ++i) {
    std::copy_n(emb_rows_.data() + i * emb_stride_, emb_dims_[i], repacked.data() + i * dim);
  }
  emb_rows_ = std::move(repacked);
  emb_stride_ = dim;
}

void ExpertMapStore::RequantizeColumn(size_t k, float v) {
  // Widen monotonically with a 25% margin past the violating value, so a slowly creeping
  // column maximum triggers O(log) requantizations, not one per insert.
  float lo = std::min(col_range_lo_[k], v);
  float hi = std::max(col_range_hi_[k], v);
  const float margin = 0.25f * (hi - lo);
  if (v < col_range_lo_[k]) {
    lo = v - margin;
  }
  if (v > col_range_hi_[k]) {
    hi = v + margin;
  }
  col_range_lo_[k] = lo;
  col_range_hi_[k] = hi;
  const float scale = (hi - lo) / 255.0f;
  col_offsets_[k] = lo;
  col_scales_[k] = scale;
  // Re-encode the whole column from the exact record data (records_ keeps the original
  // doubles), and refresh the dequantized row view to match what scans now see.
  for (size_t i = 0; i < records_.size(); ++i) {
    const std::span<const double> flat = records_[i].map.Flat();
    const float exact = flat.empty() ? 0.0f : static_cast<float>(flat[k]);
    const uint8_t q = EncodeQ8(exact, scale, lo);
    map_cols8_[k * capacity_ + i] = q;
    map_rows_[i * static_cast<size_t>(map_dim_) + k] = lo + scale * static_cast<float>(q);
  }
  norms_dirty_ = true;  // Every record's prefix norms may have shifted; IndexRecord rebuilds.
}

float ExpertMapStore::StoreColumnValue(size_t k, size_t slot, float v) {
  switch (precision_) {
    case MapPrecision::kFp32:
      map_cols_[k * capacity_ + slot] = v;
      return v;
    case MapPrecision::kFp16: {
      const uint16_t h = Fp16FromFloat(v);
      map_cols16_[k * capacity_ + slot] = h;
      return Fp16ToFloat(h);
    }
    case MapPrecision::kInt8: {
      if (v < col_range_lo_[k] || v > col_range_hi_[k]) {
        RequantizeColumn(k, v);
      }
      const float scale = col_scales_[k];
      const float offset = col_offsets_[k];
      const uint8_t q = EncodeQ8(v, scale, offset);
      map_cols8_[k * capacity_ + slot] = q;
      return offset + scale * static_cast<float>(q);
    }
  }
  return v;
}

void ExpertMapStore::RebuildPrefixNorms(size_t slot) {
  // Running prefix squared norms over the (dequantized) float row — entry l = ‖layers
  // [0, l)‖² — and their inverses, with 0 standing in for 1/0 so scan-time scoring is a
  // branch-free multiply.
  const int J = model_.experts_per_layer;
  const float* row = map_rows_.data() + slot * static_cast<size_t>(map_dim_);
  double* sq = prefix_sqnorms_.data() + slot * static_cast<size_t>(model_.num_layers + 1);
  double* inv = inv_prefix_norms_.data() + slot * static_cast<size_t>(model_.num_layers + 1);
  sq[0] = 0.0;
  inv[0] = 0.0;
  for (int l = 0; l < model_.num_layers; ++l) {
    const std::span<const float> layer(row + static_cast<size_t>(l) * static_cast<size_t>(J),
                                       static_cast<size_t>(J));
    sq[l + 1] = sq[l] + DotF(layer, layer);
    inv[l + 1] = sq[l + 1] == 0.0 ? 0.0 : 1.0 / std::sqrt(sq[l + 1]);
  }
}

void ExpertMapStore::IndexRecord(size_t slot) {
  const StoredIteration& record = records_[slot];
  const std::span<const double> flat = record.map.Flat();
  FMOE_CHECK_MSG(flat.empty() || flat.size() == static_cast<size_t>(map_dim_),
                 "map shape mismatch: record has " << flat.size() << " values, store expects "
                                                   << map_dim_);

  // Map row (empty maps index as all-zero rows and never match anything), scattered into the
  // layer-major column matrix as well: column k of record `slot` lives at k·capacity + slot.
  // The row keeps the dequantized value StoreColumnValue actually stored.
  float* row = map_rows_.data() + slot * static_cast<size_t>(map_dim_);
  for (int k = 0; k < map_dim_; ++k) {
    const float v = flat.empty() ? 0.0f : static_cast<float>(flat[static_cast<size_t>(k)]);
    row[k] = StoreColumnValue(static_cast<size_t>(k), slot, v);
  }

  if (norms_dirty_) {
    // A column requantization rewrote dequantized values across all records.
    for (size_t i = 0; i < records_.size(); ++i) {
      RebuildPrefixNorms(i);
    }
    norms_dirty_ = false;
  } else {
    RebuildPrefixNorms(slot);
  }

  // Embedding row + norm.
  const size_t dim = record.embedding.size();
  GrowEmbeddingStride(dim);
  emb_dims_[slot] = dim;
  float* erow = emb_rows_.data() + slot * emb_stride_;
  std::fill_n(erow, emb_stride_, 0.0f);
  for (size_t k = 0; k < dim; ++k) {
    erow[k] = static_cast<float>(record.embedding[k]);
  }
  emb_norms_[slot] =
      std::sqrt(DotF(std::span<const float>(erow, dim), std::span<const float>(erow, dim)));
  inv_emb_norms_[slot] = emb_norms_[slot] == 0.0 ? 0.0 : 1.0 / emb_norms_[slot];
}

uint64_t ExpertMapStore::Insert(StoredIteration record) {
  ++generation_;
  if (records_.size() < capacity_) {
    records_.push_back(std::move(record));
    map_rows_.resize(records_.size() * static_cast<size_t>(map_dim_));
    emb_rows_.resize(records_.size() * emb_stride_, 0.0f);
    emb_dims_.push_back(0);
    emb_norms_.push_back(0.0);
    inv_emb_norms_.push_back(0.0);
    prefix_sqnorms_.resize(records_.size() * static_cast<size_t>(model_.num_layers + 1));
    inv_prefix_norms_.resize(records_.size() * static_cast<size_t>(model_.num_layers + 1));
    IndexRecord(records_.size() - 1);
    return 0;
  }
  if (dedup_ == StoreDedupPolicy::kFifo) {
    records_[next_fifo_slot_] = std::move(record);
    IndexRecord(next_fifo_slot_);
    next_fifo_slot_ = (next_fifo_slot_ + 1) % capacity_;
    return 0;
  }

  // At capacity: one batched RDY pass to find the stored record most redundant with the
  // incoming one. RDY = (d/L)·cos_sem + ((L−d)/L)·cos_traj; embedding-dimension mismatches
  // contribute a semantic term of 0 (and are not charged).
  const size_t n = records_.size();
  const std::vector<float> map_query = ToFloat(record.map.Flat());
  const double map_qnorm = std::sqrt(DotF(map_query, map_query));
  const double inv_map_qnorm = map_qnorm == 0.0 ? 0.0 : 1.0 / map_qnorm;
  const size_t norm_stride = static_cast<size_t>(model_.num_layers + 1);
  const size_t full = static_cast<size_t>(model_.num_layers);
  Q8Coeffs folded;
  FoldQ8ScanCoeffs(map_query, 0, &folded);
  std::vector<double> trajectory(n, 0.0);
  RunPartitioned(n, search_threads_, [&](size_t begin, size_t end) {
    ScanMapColumns(map_query, 0, begin, end, &folded, trajectory.data() + begin);
    for (size_t i = begin; i < end; ++i) {
      trajectory[i] *= inv_map_qnorm * inv_prefix_norms_[i * norm_stride + full];
    }
  });

  const std::vector<float> emb_query = ToFloat(record.embedding);
  const double emb_qnorm = std::sqrt(DotF(emb_query, emb_query));
  const double inv_emb_qnorm = emb_qnorm == 0.0 ? 0.0 : 1.0 / emb_qnorm;
  std::vector<double> semantic(n, 0.0);
  uint64_t compared = 0;
  for (size_t i = 0; i < n; ++i) {
    if (emb_dims_[i] != emb_query.size()) {
      continue;
    }
    ++compared;
    semantic[i] = DotF(emb_query, EmbeddingRow(i)) * inv_emb_qnorm * inv_emb_norms_[i];
  }

  const double L = static_cast<double>(model_.num_layers);
  const double d = static_cast<double>(prefetch_distance_);
  size_t most_redundant = 0;
  double best_score = -2.0;
  for (size_t i = 0; i < n; ++i) {
    const double score = (d / L) * semantic[i] + ((L - d) / L) * trajectory[i];
    if (score > best_score) {
      best_score = score;
      most_redundant = i;
    }
  }
  const uint64_t flops = n * 2ULL * static_cast<uint64_t>(map_dim_) +
                         compared * 2ULL * record.embedding.size();
  records_[most_redundant] = std::move(record);
  IndexRecord(most_redundant);
  return flops;
}

SearchResult ExpertMapStore::SemanticSearch(std::span<const double> embedding) const {
  SearchResult result;
  const size_t n = records_.size();
  if (n == 0) {
    return result;
  }
  const std::vector<float> query = ToFloat(embedding);
  const double qnorm = std::sqrt(DotF(query, query));
  const double inv_qnorm = qnorm == 0.0 ? 0.0 : 1.0 / qnorm;

  // Fast path: every record matches the query dimension — one batched strided pass.
  const bool uniform =
      std::all_of(emb_dims_.begin(), emb_dims_.end(),
                  [&](size_t dim) { return dim == query.size(); });
  std::vector<double> scores(n, 0.0);
  uint64_t compared = 0;
  if (uniform) {
    compared = n;
    RunPartitioned(n, search_threads_, [&](size_t begin, size_t end) {
      CosineAgainstRows(query, inv_qnorm, emb_rows_.data() + begin * emb_stride_, emb_stride_,
                        end - begin, inv_emb_norms_.data() + begin, scores.data() + begin);
    });
    for (size_t i = 0; i < n; ++i) {
      UpdateBest(&result, i, scores[i]);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (emb_dims_[i] != query.size()) {
        continue;  // Skipped records are not compared and not charged.
      }
      ++compared;
      UpdateBest(&result, i, DotF(query, EmbeddingRow(i)) * inv_qnorm * inv_emb_norms_[i]);
    }
  }
  result.flops = compared * 2ULL * embedding.size();
  return result;
}

SearchResult ExpertMapStore::TrajectorySearch(std::span<const double> prefix,
                                              int prefix_layers) const {
  FMOE_CHECK(prefix.size() == static_cast<size_t>(prefix_layers) *
                                  static_cast<size_t>(model_.experts_per_layer));
  SearchResult result;
  const size_t n = records_.size();
  if (n == 0) {
    return result;
  }
  const std::vector<float> query = ToFloat(prefix);
  const double qnorm = std::sqrt(DotF(query, query));
  const double inv_qnorm = qnorm == 0.0 ? 0.0 : 1.0 / qnorm;
  const size_t norm_stride = static_cast<size_t>(model_.num_layers + 1);
  Q8Coeffs folded;
  FoldQ8ScanCoeffs(query, 0, &folded);
  std::vector<double> scores(n, 0.0);
  RunPartitioned(n, search_threads_, [&](size_t begin, size_t end) {
    // The prefix touches columns [0, prefix_layers·J) of the layer-major matrix — one fully
    // sequential streaming pass, independent of the full map width.
    ScanMapColumns(query, 0, begin, end, &folded, scores.data() + begin);
    for (size_t i = begin; i < end; ++i) {
      scores[i] *= inv_qnorm *
                   inv_prefix_norms_[i * norm_stride + static_cast<size_t>(prefix_layers)];
    }
  });
  for (size_t i = 0; i < n; ++i) {
    UpdateBest(&result, i, scores[i]);
  }
  result.flops = n * 2ULL * prefix.size();
  return result;
}

size_t ExpertMapStore::MemoryBytes() const {
  size_t map_value_bytes = sizeof(float);
  switch (precision_) {
    case MapPrecision::kFp32:
      map_value_bytes = sizeof(float);
      break;
    case MapPrecision::kFp16:
      map_value_bytes = sizeof(uint16_t);
      break;
    case MapPrecision::kInt8:
      map_value_bytes = sizeof(uint8_t);
      break;
  }
  size_t bytes = 0;
  for (size_t i = 0; i < records_.size(); ++i) {
    bytes += static_cast<size_t>(map_dim_) * map_value_bytes + emb_dims_[i] * sizeof(float);
  }
  if (precision_ == MapPrecision::kInt8 && !records_.empty()) {
    bytes += 2 * static_cast<size_t>(map_dim_) * sizeof(float);  // Scale/offset tables.
  }
  return bytes;
}

size_t ExpertMapStore::MemoryBytesAtCapacity(int embedding_dim) const {
  size_t map_value_bytes = sizeof(float);
  switch (precision_) {
    case MapPrecision::kFp32:
      map_value_bytes = sizeof(float);
      break;
    case MapPrecision::kFp16:
      map_value_bytes = sizeof(uint16_t);
      break;
    case MapPrecision::kInt8:
      map_value_bytes = sizeof(uint8_t);
      break;
  }
  const size_t per_record =
      static_cast<size_t>(map_dim_) * map_value_bytes +
      static_cast<size_t>(embedding_dim) * sizeof(float);
  size_t bytes = capacity_ * per_record;
  if (precision_ == MapPrecision::kInt8) {
    bytes += 2 * static_cast<size_t>(map_dim_) * sizeof(float);
  }
  return bytes;
}

void ExpertMapStore::Clear() {
  ++generation_;
  records_.clear();
  // The column matrices keep their fixed capacity-stride allocations; stale slots are never
  // read because every scan is bounded by size(). Quantization ranges reset so a reused store
  // re-adapts its per-column grids to the new data.
  if (precision_ == MapPrecision::kInt8) {
    std::fill(col_scales_.begin(), col_scales_.end(), 0.0f);
    std::fill(col_offsets_.begin(), col_offsets_.end(), 0.0f);
    std::fill(col_range_lo_.begin(), col_range_lo_.end(), 0.0f);
    std::fill(col_range_hi_.begin(), col_range_hi_.end(), 0.0f);
  }
  norms_dirty_ = false;
  map_rows_.clear();
  emb_rows_.clear();
  emb_stride_ = 0;
  emb_dims_.clear();
  emb_norms_.clear();
  inv_emb_norms_.clear();
  prefix_sqnorms_.clear();
  inv_prefix_norms_.clear();
  next_fifo_slot_ = 0;
}

// ---- TrajectorySearchSession ----

TrajectorySearchSession::TrajectorySearchSession(const ExpertMapStore* store) : store_(store) {
  FMOE_CHECK(store != nullptr);
  prefix_.reserve(static_cast<size_t>(store->map_dim()));
  Reset();
}

void TrajectorySearchSession::Reset() {
  observed_layers_ = 0;
  prefix_.clear();
  prefix_sqnorm_ = 0.0;
  generation_ = store_->generation();
  dots_.assign(store_->size(), 0.0);
}

bool TrajectorySearchSession::IsStale() const {
  return generation_ != store_->generation();
}

uint64_t TrajectorySearchSession::Rebuild() {
  const size_t n = store_->size();
  dots_.assign(n, 0.0);
  generation_ = store_->generation();
  if (n == 0 || prefix_.empty()) {
    return 0;
  }
  store_->FoldQ8ScanCoeffs(prefix_, 0, &q8_scratch_);
  store_->ScanMapColumns(prefix_, 0, 0, n, &q8_scratch_, dots_.data());
  return n * 2ULL * prefix_.size();
}

uint64_t TrajectorySearchSession::ObserveLayer(std::span<const double> probs) {
  const int J = store_->model().experts_per_layer;
  FMOE_CHECK_MSG(probs.size() == static_cast<size_t>(J),
                 "gate distribution has " << probs.size() << " entries, expected " << J);
  FMOE_CHECK(observed_layers_ < store_->model().num_layers);
  const size_t offset = prefix_.size();
  prefix_.resize(offset + static_cast<size_t>(J));
  for (int j = 0; j < J; ++j) {
    prefix_[offset + static_cast<size_t>(j)] = static_cast<float>(probs[static_cast<size_t>(j)]);
  }
  const std::span<const float> block(prefix_.data() + offset, static_cast<size_t>(J));
  prefix_sqnorm_ += DotF(block, block);
  ++observed_layers_;

  if (IsStale()) {
    return Rebuild();
  }
  const size_t n = store_->size();
  if (n == 0) {
    return 0;
  }
  // Extend each record's running dot by only the newly observed layer: the layer's J values
  // occupy columns [offset, offset + J) of the layer-major matrix, so this is J contiguous
  // sequential column passes — a few microseconds even at a 4096-record store.
  store_->FoldQ8ScanCoeffs(block, offset, &q8_scratch_);
  store_->ScanMapColumns(block, offset, 0, n, &q8_scratch_, dots_.data());
  return n * 2ULL * static_cast<uint64_t>(J);
}

SearchResult TrajectorySearchSession::CurrentBest() {
  SearchResult result;
  uint64_t flops = 0;
  if (IsStale()) {
    flops = Rebuild();
  }
  const size_t n = store_->size();
  if (n == 0 || observed_layers_ == 0) {
    result.flops = flops;
    return result;
  }
  const double qnorm = std::sqrt(prefix_sqnorm_);
  const double inv_qnorm = qnorm == 0.0 ? 0.0 : 1.0 / qnorm;
  const size_t norm_stride = static_cast<size_t>(store_->model().num_layers + 1);
  const double* inv_norms = store_->inv_prefix_norms_data();
  for (size_t i = 0; i < n; ++i) {
    const double inv = inv_norms[i * norm_stride + static_cast<size_t>(observed_layers_)];
    UpdateBest(&result, i, dots_[i] * inv_qnorm * inv);
  }
  result.flops = flops + 3ULL * n;  // Norm product, scale, compare per record.
  return result;
}

}  // namespace fmoe
