#include "src/core/map_store.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/math.h"

namespace fmoe {

ExpertMapStore::ExpertMapStore(const ModelConfig& model, size_t capacity, int prefetch_distance,
                               StoreDedupPolicy dedup)
    : model_(model), capacity_(capacity), prefetch_distance_(prefetch_distance), dedup_(dedup) {
  FMOE_CHECK(capacity > 0);
  FMOE_CHECK(prefetch_distance >= 0 && prefetch_distance <= model.num_layers);
  records_.reserve(capacity);
}

const StoredIteration& ExpertMapStore::Get(size_t index) const {
  FMOE_CHECK(index < records_.size());
  return records_[index];
}

double ExpertMapStore::RedundancyScore(const StoredIteration& a, const StoredIteration& b) const {
  const double L = static_cast<double>(model_.num_layers);
  const double d = static_cast<double>(prefetch_distance_);
  const double semantic = CosineSimilarity(a.embedding, b.embedding);
  const double trajectory = CosineSimilarity(a.map.Flat(), b.map.Flat());
  return (d / L) * semantic + ((L - d) / L) * trajectory;
}

uint64_t ExpertMapStore::Insert(StoredIteration record) {
  if (records_.size() < capacity_) {
    records_.push_back(std::move(record));
    return 0;
  }
  if (dedup_ == StoreDedupPolicy::kFifo) {
    records_[next_fifo_slot_] = std::move(record);
    next_fifo_slot_ = (next_fifo_slot_ + 1) % capacity_;
    return 0;
  }
  // At capacity: replace the stored record most redundant with the incoming one.
  size_t most_redundant = 0;
  double best_score = -2.0;
  for (size_t i = 0; i < records_.size(); ++i) {
    const double score = RedundancyScore(record, records_[i]);
    if (score > best_score) {
      best_score = score;
      most_redundant = i;
    }
  }
  const uint64_t flops =
      records_.size() *
      2ULL * (record.map.Flat().size() + record.embedding.size());
  records_[most_redundant] = std::move(record);
  return flops;
}

SearchResult ExpertMapStore::SemanticSearch(std::span<const double> embedding) const {
  SearchResult result;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].embedding.size() != embedding.size()) {
      continue;
    }
    const double score = CosineSimilarity(embedding, records_[i].embedding);
    if (!result.found || score > result.score) {
      result.found = true;
      result.index = i;
      result.score = score;
    }
  }
  result.flops = records_.size() * 2ULL * embedding.size();
  return result;
}

SearchResult ExpertMapStore::TrajectorySearch(std::span<const double> prefix,
                                              int prefix_layers) const {
  FMOE_CHECK(prefix.size() == static_cast<size_t>(prefix_layers) *
                                  static_cast<size_t>(model_.experts_per_layer));
  SearchResult result;
  for (size_t i = 0; i < records_.size(); ++i) {
    const std::span<const double> candidate = records_[i].map.Prefix(prefix_layers);
    const double score = CosineSimilarity(prefix, candidate);
    if (!result.found || score > result.score) {
      result.found = true;
      result.index = i;
      result.score = score;
    }
  }
  result.flops = records_.size() * 2ULL * prefix.size();
  return result;
}

size_t ExpertMapStore::MemoryBytes() const {
  size_t bytes = 0;
  for (const StoredIteration& record : records_) {
    bytes += record.map.StorageBytes() + record.embedding.size() * sizeof(float);
  }
  return bytes;
}

size_t ExpertMapStore::MemoryBytesAtCapacity(int embedding_dim) const {
  const size_t per_record =
      static_cast<size_t>(model_.num_layers) * static_cast<size_t>(model_.experts_per_layer) *
          sizeof(float) +
      static_cast<size_t>(embedding_dim) * sizeof(float);
  return capacity_ * per_record;
}

}  // namespace fmoe
