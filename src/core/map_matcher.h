// Hybrid expert-map matcher (§4.2, Fig. 7).
//
// Per-iteration state machine combining the two searches:
//   * BeginIteration runs the semantic search on the iteration embedding; its matched map
//     guides prefetching for the first d layers (no trajectory observed yet).
//   * ObserveLayer feeds the gate output to an incremental TrajectorySearchSession (which
//     extends per-record running dot products by just the new layer) and, on a configurable
//     cadence — the matcher runs asynchronously and cannot re-match every layer — reads the
//     session's current best match; the matched map guides layer l + d.
// GuidanceFor(target) returns the appropriate matched distribution and its similarity score,
// which the prefetcher turns into the dynamic selection threshold δ.
#ifndef FMOE_SRC_CORE_MAP_MATCHER_H_
#define FMOE_SRC_CORE_MAP_MATCHER_H_

#include <cstdint>
#include <vector>

#include "src/core/map_store.h"
#include "src/core/sharded_store.h"

namespace fmoe {

struct MatcherOptions {
  bool use_semantic = true;
  bool use_trajectory = true;
  // Trajectory re-match cadence in layers (1 = every layer; higher amortises search cost).
  int rematch_interval = 4;
};

struct Guidance {
  bool valid = false;
  double score = 0.0;               // Similarity score of the matched map.
  std::vector<double> probs;        // Matched distribution for the target layer.
};

class HybridMatcher {
 public:
  HybridMatcher(const ShardedMapStore* store, const ModelConfig& model, int prefetch_distance,
                const MatcherOptions& options);

  // Starts a new iteration: runs the semantic search against `embedding`.
  void BeginIteration(std::span<const double> embedding);

  // Records the gate output of `layer` and re-runs the trajectory search on cadence.
  void ObserveLayer(int layer, std::span<const double> probs);

  // Matched guidance for `target_layer`: semantic-matched for layers < d, trajectory-matched
  // otherwise. Invalid when the relevant search is disabled or found nothing.
  Guidance GuidanceFor(int target_layer) const;

  double semantic_score() const { return semantic_.score; }
  double trajectory_score() const { return trajectory_.score; }
  bool semantic_found() const { return semantic_.found; }
  bool trajectory_found() const { return trajectory_.found; }

  // Search work (flops) performed since the last call; feeds the async-overhead model.
  // Trajectory work is charged incrementally: 2·J·N per observed layer (the session's dot
  // extension) plus 3·N per rematch (score normalization), not a recomputed-prefix scan.
  uint64_t ConsumeSearchFlops();

 private:
  const ShardedMapStore* store_;  // Not owned.
  ModelConfig model_;
  int prefetch_distance_;
  MatcherOptions options_;

  SearchResult semantic_;
  SearchResult trajectory_;
  ShardedTrajectorySession session_;  // Incremental trajectory state, one dot cache per shard.
  int observed_layers_ = 0;
  int last_match_prefix_ = 0;
  uint64_t pending_flops_ = 0;
};

}  // namespace fmoe

#endif  // FMOE_SRC_CORE_MAP_MATCHER_H_
