#include "src/core/shard_router.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace fmoe {
namespace {

// One-shot SplitMix64 finalizer over a composed key: cheap, well-mixed, and stateless, so
// plane components and ring points are pure functions of their coordinates.
uint64_t Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t state = a ^ (b * 0x9e3779b97f4a7c15ULL) ^ (c * 0xbf58476d1ce4e5b9ULL);
  return SplitMix64(state);
}

}  // namespace

SemanticShardRouter::SemanticShardRouter(int targets, uint64_t seed)
    : targets_(targets), seed_(seed) {
  FMOE_CHECK(targets >= 1);
  ring_.reserve(static_cast<size_t>(targets) * kVirtualNodes);
  for (int t = 0; t < targets; ++t) {
    for (int v = 0; v < kVirtualNodes; ++v) {
      ring_.push_back({Mix(seed_ ^ 0x72696e67ULL /* "ring" */, static_cast<uint64_t>(t),
                           static_cast<uint64_t>(v)),
                       t});
    }
  }
  // Sort by position; tie-break toward the lower target id so the ring layout is a pure
  // function of (seed, targets) even if two points collide.
  std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a, const RingPoint& b) {
    return a.position != b.position ? a.position < b.position : a.target < b.target;
  });
}

double SemanticShardRouter::PlaneComponent(int plane, size_t dim) const {
  // Map 64 mixed bits to (-1, 1) uniformly. Uniform components give the same LSH guarantees
  // as Gaussians for sign-hash purposes (only the direction distribution matters, and the
  // per-coordinate symmetry is what the sign test consumes).
  const uint64_t bits =
      Mix(seed_ ^ 0x706c616e65ULL /* "plane" */, static_cast<uint64_t>(plane),
          static_cast<uint64_t>(dim));
  return static_cast<double>(bits >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

uint64_t SemanticShardRouter::Signature(std::span<const double> embedding) const {
  uint64_t signature = 0;
  for (int p = 0; p < kPlanes; ++p) {
    double dot = 0.0;
    for (size_t d = 0; d < embedding.size(); ++d) {
      dot += embedding[d] * PlaneComponent(p, d);
    }
    signature |= static_cast<uint64_t>(dot >= 0.0) << p;
  }
  return signature;
}

int SemanticShardRouter::RouteSignature(uint64_t signature) const {
  if (targets_ == 1) {
    return 0;
  }
  // First ring point at or after hash(signature), wrapping to the smallest point.
  uint64_t state = signature ^ seed_;
  const uint64_t position = SplitMix64(state);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), position,
      [](const RingPoint& point, uint64_t pos) { return point.position < pos; });
  return it == ring_.end() ? ring_.front().target : it->target;
}

int SemanticShardRouter::Route(std::span<const double> embedding) const {
  return RouteSignature(Signature(embedding));
}

}  // namespace fmoe
