// The full fMoE offloading policy (§3.2 workflow, steps 1–5).
//
// Per iteration: collect context (iteration embedding + observed trajectory), hybrid-match
// expert maps from the store, prefetch experts selected by the dynamic δ threshold in
// PRI^prefetch order, stamp matched probabilities on cached experts for priority eviction, and
// insert the completed iteration's map back into the store (with RDY dedup at capacity).
// Matching, prefetch issue, and store updates are asynchronous: each hook computes its
// decision immediately (matcher state advances in virtual-zero time) and *publishes* it with
// its modeled search cost via EngineHandle::PublishDeferred — the engine's background matcher
// worker delivers the command at the modeled completion instant (§4.3 pub-sub). Only the
// lightweight context collection runs synchronously, matching Fig. 15's overhead accounting.
//
// The ablation variants of Fig. 12a are configuration points here: Map(T) disables semantic
// search, Map(T+S) disables the dynamic threshold, Map(T+S+δ) is the default.
#ifndef FMOE_SRC_CORE_FMOE_POLICY_H_
#define FMOE_SRC_CORE_FMOE_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/map_matcher.h"
#include "src/core/map_store.h"
#include "src/core/prefetcher.h"
#include "src/core/sharded_store.h"
#include "src/serving/policy.h"

namespace fmoe {

struct FmoeOptions {
  size_t store_capacity = 1000;  // 1K maps, the paper's operating point (§6.6).
  StoreDedupPolicy store_dedup = StoreDedupPolicy::kRedundancy;
  // Storage precision of the store's trajectory search matrix (DESIGN.md §5g): fp16/int8
  // shrink the Fig. 16 store footprint 2×/4× at tolerance-bounded (not bitwise) accuracy.
  MapPrecision map_precision = MapPrecision::kFp32;
  MatcherOptions matcher;
  PrefetcherOptions prefetcher;
  // Models the async matcher's speed (store searches run on spare CPU/GPU cycles).
  double search_throughput_flops = 50.0e9;
  // Threads the store's full scans (semantic search, one-shot trajectory search, RDY dedup)
  // may use. Results are bit-identical for any value; 1 (default) avoids thread spawn
  // overhead for the paper's store sizes.
  int search_threads = 1;
  // Synchronous context-collection cost per MoE layer per iteration (gathering L gate
  // distributions + the iteration embedding; Fig. 15 keeps the total in the low ms).
  double context_collection_sec_per_layer = 1.0e-5;
  // Route match/prefetch work through EngineHandle::PublishDeferred (the pub-sub pipeline,
  // §4.3): prefetch commands apply when the modeled matcher worker finishes the job. false
  // uses the legacy inline path (AddAsyncWork + immediate commands), which equals the
  // published path at matcher_latency_scale == 0 — the replay-equivalence test pins this.
  bool publish_deferred = true;
  // Mixed-precision extension (Hobbit-style): prefetch candidates whose matched probability
  // is below this threshold at reduced precision (half the bytes). 0 disables the feature
  // (the paper's lossless default).
  double low_precision_threshold = 0.0;
  double low_precision_fraction = 0.5;
  // Tier-aware prefetch (multi-tier engines only): the top N scored-but-not-selected map
  // candidates per matched layer are speculatively staged NVMe→host, so a later match (or a
  // demand miss) pays only the host→GPU hop. 0 disables; two-tier engines no-op regardless.
  int host_stage_candidates = 0;
  // Semantic-cluster shards of the map store (DESIGN.md §5i): the capacity splits across
  // shards keyed by a consistent hash of the record embedding, each with its own generation,
  // so an insert into one cluster no longer invalidates sessions scanning the others. 1
  // (default) replays the monolithic store bitwise.
  int map_shards = 1;
  std::string variant_name = "fMoE";
};

class FmoePolicy : public OffloadPolicy {
 public:
  FmoePolicy(const ModelConfig& model, int prefetch_distance, const FmoeOptions& options);

  std::string name() const override { return options_.variant_name; }

  void OnIterationStart(EngineHandle& engine, const IterationContext& context) override;
  void OnGateOutput(EngineHandle& engine, const IterationContext& context, int layer,
                    const std::vector<double>& probs,
                    const std::vector<int>& activated) override;
  void OnIterationEnd(EngineHandle& engine, const IterationContext& context,
                      const std::vector<std::vector<double>>& layer_probs) override;
  void Reset() override;

  const ShardedMapStore& store() const { return store_; }
  ShardedMapStore& mutable_store() { return store_; }

  // Mean similarity scores observed since construction/Reset (Fig. 14a).
  double MeanSemanticScore() const;
  double MeanTrajectoryScore() const;

  // Optional per-iteration score log (zipped with the engine's iteration records to compute
  // the similarity <-> hit-rate correlation of Fig. 8). Only meaningful with batch size 1.
  struct IterationScoreSample {
    double semantic = 0.0;
    double trajectory = 0.0;
    bool semantic_valid = false;
    bool trajectory_valid = false;
  };
  void EnableScoreLog() { log_scores_ = true; }
  const std::vector<IterationScoreSample>& score_log() const { return score_log_; }
  void ClearScoreLog() { score_log_.clear(); }

 private:
  // A prefetch decision computed at publish time: the layer distribution to stamp on resident
  // experts plus the selected candidates in PRI^prefetch order. This is the pub-sub message
  // body — values, not a recipe — so applying it later uses the matcher state as observed,
  // not as it has since evolved.
  struct PrefetchCommand {
    bool valid = false;
    int target_layer = 0;
    std::vector<double> stamp_probs;
    std::vector<PrefetchCandidate> candidates;
  };

  HybridMatcher& MatcherForSlot(int slot);
  PrefetchCommand BuildCommand(const HybridMatcher& matcher, int target_layer,
                               int current_layer) const;
  static void ApplyCommand(EngineHandle& engine, const PrefetchCommand& command,
                           double low_precision_threshold, double low_precision_fraction,
                           int host_stage_candidates);
  // Publishes `cost_seconds` of matcher work carrying `commands` on `topic` (kAsync), or runs
  // the legacy inline path when publish_deferred is off.
  void PublishMatchWork(EngineHandle& engine, double cost_seconds, uint64_t topic,
                        std::vector<PrefetchCommand> commands);

  // Pub-sub topics: one per (batch slot, target layer) so a newer gate observation for the
  // same target supersedes a still-pending older decision, plus one per slot for the
  // iteration-start (semantic window) job.
  uint64_t GateTopic(int slot, int target_layer) const {
    return 1 + static_cast<uint64_t>(slot) * static_cast<uint64_t>(model_.num_layers + 1) +
           static_cast<uint64_t>(target_layer);
  }
  uint64_t StartTopic(int slot) const { return GateTopic(slot, model_.num_layers); }

  ModelConfig model_;
  int prefetch_distance_;
  FmoeOptions options_;
  ShardedMapStore store_;
  std::vector<std::unique_ptr<HybridMatcher>> matchers_;  // One per batch slot.
  // Per-shard trace tracks ("store/shardK"), registered lazily on the first traced insert.
  // Only sharded stores (map_shards > 1) register tracks, so default-run traces are unchanged.
  std::vector<int> shard_tracks_;

  double semantic_score_sum_ = 0.0;
  uint64_t semantic_score_count_ = 0;
  double trajectory_score_sum_ = 0.0;
  uint64_t trajectory_score_count_ = 0;
  bool log_scores_ = false;
  std::vector<IterationScoreSample> score_log_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_CORE_FMOE_POLICY_H_
