// Binary persistence for the Expert Map Store.
//
// The paper's offline protocol builds the store from the history split of a dataset before
// serving (§6.1); persisting it lets deployments pay that cost once. The format is a small
// versioned header (magic, version, model shape, map precision, record count) followed by
// fixed-layout records: map rows are stored at the store's native precision (float32, or the
// quantized fp16/int8 payloads of DESIGN.md §5g — int8 files carry a per-column scale/offset
// prologue) and embeddings as float32 — exactly the footprint the paper's memory accounting
// assumes (Fig. 16). fp32 files are byte-identical to the pre-quantization format.
//
// Loading decodes records to exact doubles and re-inserts them through the normal path, so a
// store may load a file of any precision: the destination's own precision re-quantizes as
// needed (e.g. loading an fp32 history file into an int8 store quantizes it offline).
//
// Loading validates the header against the target store's model shape and refuses mismatches;
// it never trusts record counts beyond the stream's actual content.
#ifndef FMOE_SRC_CORE_MAP_STORE_IO_H_
#define FMOE_SRC_CORE_MAP_STORE_IO_H_

#include <iosfwd>
#include <string>

#include "src/core/map_store.h"
#include "src/core/sharded_store.h"

namespace fmoe {

// Outcome of a save/load; `ok` false means `error` describes the failure and the destination
// store (for loads) is left unchanged.
struct StoreIoResult {
  bool ok = true;
  std::string error;
  size_t records = 0;
  size_t bytes = 0;

  static StoreIoResult Failure(std::string message) {
    StoreIoResult result;
    result.ok = false;
    result.error = std::move(message);
    return result;
  }
};

// Writes every record of `store` to `out`.
StoreIoResult SaveStore(const ExpertMapStore& store, std::ostream& out);

// Reads records from `in` and inserts them into `store` (which must be constructed for the
// same model shape; capacity may differ — excess records go through normal replacement).
StoreIoResult LoadStore(std::istream& in, ExpertMapStore* store);

// Sharded-store persistence (DESIGN.md §5i). A 1-shard store writes the legacy single-store
// format byte-identically; a multi-shard store writes a small wrapper header (shard count)
// followed by one legacy blob per shard. Loading accepts either format into any shard count:
// records always decode to exact doubles and re-insert through the destination's semantic
// routing, so a file saved at S shards reloads correctly into S' shards.
StoreIoResult SaveStore(const ShardedMapStore& store, std::ostream& out);
StoreIoResult LoadStore(std::istream& in, ShardedMapStore* store);

// File-path conveniences.
StoreIoResult SaveStoreToFile(const ExpertMapStore& store, const std::string& path);
StoreIoResult LoadStoreFromFile(const std::string& path, ExpertMapStore* store);
StoreIoResult SaveStoreToFile(const ShardedMapStore& store, const std::string& path);
StoreIoResult LoadStoreFromFile(const std::string& path, ShardedMapStore* store);

}  // namespace fmoe

#endif  // FMOE_SRC_CORE_MAP_STORE_IO_H_
