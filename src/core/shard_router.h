// Semantic consistent-hash routing over the map-embedding space (DESIGN.md §5i).
//
// The Expert Map Store shards by semantic cluster, and the cluster layer steers requests to
// engine replicas by the same key, so both need one deterministic function
//   embedding ∈ R^d  →  target ∈ [0, targets)
// with two properties:
//   * Locality — embeddings that are semantically close (high cosine) land on the same target
//     with high probability, so one cluster's records concentrate in one shard and one
//     replica's map store sees mostly its own clusters. We get this from an LSH signature:
//     `kPlanes` random hyperplanes through the origin, each contributing one sign bit of
//     sign(<embedding, normal_p>). Random-hyperplane LSH preserves angular similarity:
//     P[bit differs] = angle / π.
//   * Stability under resizing — growing the target count must not reshuffle every key
//     (replica counts change between experiments; store files reload into different shard
//     counts). We get this from a consistent-hash ring: each target owns `kVirtualNodes`
//     points on a 64-bit ring, and a signature routes to the owner of the first point at or
//     after hash(signature). Adding a target only claims keys adjacent to its new points.
//
// Everything is derived from the constructor seed via SplitMix64, so routing is a pure
// function of (seed, targets, embedding) — independent of process, platform, and call order.
// Hyperplane normals are generated per dimension index on demand, so one router instance
// handles embeddings of any dimensionality (the store accepts mixed-dim records).
#ifndef FMOE_SRC_CORE_SHARD_ROUTER_H_
#define FMOE_SRC_CORE_SHARD_ROUTER_H_

#include <cstdint>
#include <span>
#include <vector>

namespace fmoe {

// Canonical router seed. The policy's store shards and the cluster layer's semantic-affinity
// request router must hash with the same hyperplanes, so that requests routed to a replica by
// affinity actually find their clusters' records concentrated in that replica's store.
inline constexpr uint64_t kSemanticRouterSeed = 0xf30e5eedULL;

class SemanticShardRouter {
 public:
  // Routes onto `targets` >= 1 targets. `seed` fixes the hyperplanes and the ring layout.
  SemanticShardRouter(int targets, uint64_t seed);

  int targets() const { return targets_; }

  // LSH sign-bit signature of `embedding` (kPlanes bits). Close embeddings agree on most
  // bits; the all-zero embedding signs every plane the same way and is therefore stable too.
  uint64_t Signature(std::span<const double> embedding) const;

  // Target in [0, targets) for `embedding`: ring lookup of Signature(). Deterministic.
  int Route(std::span<const double> embedding) const;

  // Ring lookup for a precomputed signature (lets callers reuse one signature across
  // ring sizes, e.g. when re-routing a store file into a different shard count).
  int RouteSignature(uint64_t signature) const;

  static constexpr int kPlanes = 16;
  static constexpr int kVirtualNodes = 32;

 private:
  // Component `dim` of hyperplane `plane`'s normal: a deterministic standard-normal-ish value
  // derived from (seed_, plane, dim) alone — no stored matrix, any dimensionality.
  double PlaneComponent(int plane, size_t dim) const;

  int targets_;
  uint64_t seed_;
  // Ring points sorted by position; each carries the owning target.
  struct RingPoint {
    uint64_t position;
    int target;
  };
  std::vector<RingPoint> ring_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_CORE_SHARD_ROUTER_H_
