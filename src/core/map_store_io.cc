#include "src/core/map_store_io.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "src/util/math.h"

namespace fmoe {
namespace {

// Host-endian format; the magic doubles as an endianness canary (a byte-swapped reader sees a
// different magic and refuses the file).
constexpr char kMagic[8] = {'F', 'M', 'O', 'E', 'S', 'T', 'R', '1'};

// Multi-shard wrapper format: this magic, a uint32 shard count, then one legacy single-store
// blob per shard. 1-shard stores write the legacy format directly (byte-identical).
constexpr char kShardMagic[8] = {'F', 'M', 'O', 'E', 'S', 'H', 'R', 'D'};

// `map_precision` holds the MapPrecision code of the map payload (fp32 = 0, fp16 = 1,
// int8 = 2). The field was a zero-initialized `reserved` slot before quantized stores
// existed, so fp32 files are byte-identical to the original format and old files load as
// fp32 unchanged.
struct StoreHeader {
  char magic[8];
  uint32_t num_layers = 0;
  uint32_t experts_per_layer = 0;
  uint32_t embedding_dim = 0;
  uint32_t map_precision = 0;
  uint64_t record_count = 0;
};

template <typename T>
bool WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// The store's SoA index already holds maps and embeddings as contiguous float rows — exactly
// the on-disk record layout — so fp32 serialization is a raw write, no conversion buffer.
bool WriteFloats(std::ostream& out, std::span<const float> values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
  return static_cast<bool>(out);
}

bool ReadFloats(std::istream& in, size_t count, std::vector<double>* values) {
  std::vector<float> buffer(count);
  in.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) {
    return false;
  }
  values->assign(buffer.begin(), buffer.end());
  return true;
}

size_t MapValueBytes(MapPrecision precision) {
  switch (precision) {
    case MapPrecision::kFp32:
      return sizeof(float);
    case MapPrecision::kFp16:
      return sizeof(uint16_t);
    case MapPrecision::kInt8:
      return sizeof(uint8_t);
  }
  return sizeof(float);
}

// Re-encodes a dequantized map row into its native payload. Both encodings round-trip
// exactly: fp16 values in MapRow *are* half-rounded, and int8 values are exactly
// offset + scale·q for some code q.
bool WriteMapRow(std::ostream& out, const ExpertMapStore& store, size_t index,
                 std::vector<uint8_t>* scratch) {
  const std::span<const float> row = store.MapRow(index);
  switch (store.map_precision()) {
    case MapPrecision::kFp32:
      return WriteFloats(out, row);
    case MapPrecision::kFp16: {
      scratch->resize(row.size() * sizeof(uint16_t));
      uint16_t* half = reinterpret_cast<uint16_t*>(scratch->data());
      for (size_t k = 0; k < row.size(); ++k) {
        half[k] = Fp16FromFloat(row[k]);
      }
      break;
    }
    case MapPrecision::kInt8: {
      scratch->resize(row.size());
      const float* scales = store.col_scales_data();
      const float* offsets = store.col_offsets_data();
      for (size_t k = 0; k < row.size(); ++k) {
        const float scale = scales[k];
        (*scratch)[k] =
            scale <= 0.0f
                ? 0
                : static_cast<uint8_t>(std::lround((row[k] - offsets[k]) / scale));
      }
      break;
    }
  }
  out.write(reinterpret_cast<const char*>(scratch->data()),
            static_cast<std::streamsize>(scratch->size()));
  return static_cast<bool>(out);
}

// Decodes one map row of `count` values at the file's precision into doubles. For int8,
// `scales`/`offsets` are the per-column tables read from the file prologue.
bool ReadMapRow(std::istream& in, MapPrecision precision, size_t count,
                const std::vector<float>& scales, const std::vector<float>& offsets,
                std::vector<double>* values) {
  if (precision == MapPrecision::kFp32) {
    return ReadFloats(in, count, values);
  }
  if (precision == MapPrecision::kFp16) {
    std::vector<uint16_t> buffer(count);
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(count * sizeof(uint16_t)));
    if (!in) {
      return false;
    }
    values->resize(count);
    for (size_t k = 0; k < count; ++k) {
      (*values)[k] = static_cast<double>(Fp16ToFloat(buffer[k]));
    }
    return true;
  }
  std::vector<uint8_t> buffer(count);
  in.read(reinterpret_cast<char*>(buffer.data()), static_cast<std::streamsize>(count));
  if (!in) {
    return false;
  }
  values->resize(count);
  for (size_t k = 0; k < count; ++k) {
    (*values)[k] = static_cast<double>(offsets[k]) +
                   static_cast<double>(scales[k]) * static_cast<double>(buffer[k]);
  }
  return true;
}

}  // namespace

StoreIoResult SaveStore(const ExpertMapStore& store, std::ostream& out) {
  const ModelConfig& model = store.model();
  StoreHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.num_layers = static_cast<uint32_t>(model.num_layers);
  header.experts_per_layer = static_cast<uint32_t>(model.experts_per_layer);
  header.embedding_dim =
      store.size() > 0 ? static_cast<uint32_t>(store.EmbeddingDim(0)) : 0;
  header.map_precision = static_cast<uint32_t>(store.map_precision());
  header.record_count = store.size();

  // All records must share the embedding dimension for a fixed record layout.
  for (size_t i = 0; i < store.size(); ++i) {
    if (store.EmbeddingDim(i) != header.embedding_dim) {
      return StoreIoResult::Failure("records have inconsistent embedding dimensions");
    }
  }
  if (!WritePod(out, header)) {
    return StoreIoResult::Failure("failed to write header");
  }

  StoreIoResult result;
  result.bytes = sizeof(header);
  const size_t map_dim = static_cast<size_t>(store.map_dim());
  if (store.map_precision() == MapPrecision::kInt8) {
    // int8 prologue: the per-column scale/offset tables the record payloads decode against.
    const std::span<const float> scales(store.col_scales_data(), map_dim);
    const std::span<const float> offsets(store.col_offsets_data(), map_dim);
    if (!WriteFloats(out, scales) || !WriteFloats(out, offsets)) {
      return StoreIoResult::Failure("failed to write quantization tables");
    }
    result.bytes += 2 * map_dim * sizeof(float);
  }
  std::vector<uint8_t> scratch;
  for (size_t i = 0; i < store.size(); ++i) {
    const uint64_t request_id = store.Get(i).request_id;
    const int32_t iteration = store.Get(i).iteration;
    if (!WritePod(out, request_id) || !WritePod(out, iteration) ||
        !WriteMapRow(out, store, i, &scratch) || !WriteFloats(out, store.EmbeddingRow(i))) {
      return StoreIoResult::Failure("failed to write record " + std::to_string(i));
    }
    result.bytes += sizeof(request_id) + sizeof(iteration) +
                    store.MapRow(i).size() * MapValueBytes(store.map_precision()) +
                    store.EmbeddingRow(i).size() * sizeof(float);
    ++result.records;
  }
  return result;
}

// Parses one legacy single-store stream into `staged` (no inserts). Shared by the plain and
// sharded loaders, which differ only in where the decoded records are re-inserted.
static StoreIoResult ParseStoreStream(std::istream& in, const ModelConfig& model,
                                      std::vector<StoredIteration>* staged) {
  StoreHeader header;
  if (!ReadPod(in, &header)) {
    return StoreIoResult::Failure("failed to read header");
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return StoreIoResult::Failure("bad magic (not an fMoE store file, or wrong endianness)");
  }
  if (header.map_precision > static_cast<uint32_t>(MapPrecision::kInt8)) {
    return StoreIoResult::Failure("unknown map precision code " +
                                  std::to_string(header.map_precision));
  }
  const MapPrecision file_precision = static_cast<MapPrecision>(header.map_precision);
  if (header.num_layers != static_cast<uint32_t>(model.num_layers) ||
      header.experts_per_layer != static_cast<uint32_t>(model.experts_per_layer)) {
    std::ostringstream message;
    message << "model shape mismatch: file has " << header.num_layers << "x"
            << header.experts_per_layer << ", store expects " << model.num_layers << "x"
            << model.experts_per_layer;
    return StoreIoResult::Failure(message.str());
  }

  const size_t map_size = static_cast<size_t>(model.num_layers) *
                          static_cast<size_t>(model.experts_per_layer);
  StoreIoResult result;
  result.bytes = sizeof(header);
  std::vector<float> scales;
  std::vector<float> offsets;
  if (file_precision == MapPrecision::kInt8) {
    std::vector<double> table;
    if (!ReadFloats(in, map_size, &table)) {
      return StoreIoResult::Failure("truncated quantization scale table");
    }
    scales.assign(table.begin(), table.end());
    if (!ReadFloats(in, map_size, &table)) {
      return StoreIoResult::Failure("truncated quantization offset table");
    }
    offsets.assign(table.begin(), table.end());
    result.bytes += 2 * map_size * sizeof(float);
  }
  // Parse into the staging buffer first so a truncated file leaves the store untouched.
  // Records decode to exact doubles and re-insert through the normal path, so the destination
  // store's own precision — which may differ from the file's — re-quantizes as needed.
  staged->reserve(staged->size() + static_cast<size_t>(header.record_count));
  for (uint64_t i = 0; i < header.record_count; ++i) {
    uint64_t request_id = 0;
    int32_t iteration = 0;
    std::vector<double> map_values;
    std::vector<double> embedding;
    if (!ReadPod(in, &request_id) || !ReadPod(in, &iteration) ||
        !ReadMapRow(in, file_precision, map_size, scales, offsets, &map_values) ||
        !ReadFloats(in, header.embedding_dim, &embedding)) {
      return StoreIoResult::Failure("truncated file at record " + std::to_string(i));
    }
    StoredIteration record;
    record.request_id = request_id;
    record.iteration = iteration;
    record.embedding = std::move(embedding);
    record.map = ExpertMap(model.num_layers, model.experts_per_layer);
    for (int layer = 0; layer < model.num_layers; ++layer) {
      record.map.SetLayer(layer,
                          std::span<const double>(map_values).subspan(
                              static_cast<size_t>(layer) *
                                  static_cast<size_t>(model.experts_per_layer),
                              static_cast<size_t>(model.experts_per_layer)));
    }
    result.bytes += sizeof(request_id) + sizeof(iteration) +
                    map_size * MapValueBytes(file_precision) +
                    header.embedding_dim * sizeof(float);
    staged->push_back(std::move(record));
  }
  return result;
}

StoreIoResult LoadStore(std::istream& in, ExpertMapStore* store) {
  std::vector<StoredIteration> staged;
  StoreIoResult result = ParseStoreStream(in, store->model(), &staged);
  if (!result.ok) {
    return result;
  }
  for (StoredIteration& record : staged) {
    store->Insert(std::move(record));
    ++result.records;
  }
  return result;
}

StoreIoResult SaveStore(const ShardedMapStore& store, std::ostream& out) {
  if (store.num_shards() == 1) {
    return SaveStore(store.shard(0), out);  // Legacy format, byte-identical.
  }
  if (!out.write(kShardMagic, sizeof(kShardMagic))) {
    return StoreIoResult::Failure("failed to write shard magic");
  }
  const uint32_t shard_count = static_cast<uint32_t>(store.num_shards());
  if (!WritePod(out, shard_count)) {
    return StoreIoResult::Failure("failed to write shard count");
  }
  StoreIoResult total;
  total.bytes = sizeof(kShardMagic) + sizeof(shard_count);
  for (int s = 0; s < store.num_shards(); ++s) {
    const StoreIoResult blob = SaveStore(store.shard(s), out);
    if (!blob.ok) {
      return blob;
    }
    total.records += blob.records;
    total.bytes += blob.bytes;
  }
  return total;
}

StoreIoResult LoadStore(std::istream& in, ShardedMapStore* store) {
  const std::istream::pos_type start = in.tellg();
  char magic[sizeof(kShardMagic)];
  if (!in.read(magic, sizeof(magic))) {
    return StoreIoResult::Failure("failed to read magic");
  }
  StoreIoResult total;
  if (std::memcmp(magic, kShardMagic, sizeof(magic)) == 0) {
    uint32_t shard_count = 0;
    if (!ReadPod(in, &shard_count)) {
      return StoreIoResult::Failure("truncated shard count");
    }
    total.bytes = sizeof(magic) + sizeof(shard_count);
    // Each blob's records re-insert through the destination's semantic routing, so the file's
    // shard count and the store's need not match — resharding happens on load.
    for (uint32_t s = 0; s < shard_count; ++s) {
      std::vector<StoredIteration> staged;
      const StoreIoResult blob = ParseStoreStream(in, store->model(), &staged);
      if (!blob.ok) {
        return blob;
      }
      for (StoredIteration& record : staged) {
        store->Insert(std::move(record));
        ++total.records;
      }
      total.bytes += blob.bytes;
    }
    return total;
  }
  // Legacy single-store file: rewind and parse it whole (ParseStoreStream re-validates the
  // legacy magic), then insert through routing.
  in.clear();
  in.seekg(start);
  if (!in) {
    return StoreIoResult::Failure("stream does not support rewinding");
  }
  std::vector<StoredIteration> staged;
  total = ParseStoreStream(in, store->model(), &staged);
  if (!total.ok) {
    return total;
  }
  for (StoredIteration& record : staged) {
    store->Insert(std::move(record));
    ++total.records;
  }
  return total;
}

StoreIoResult SaveStoreToFile(const ExpertMapStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return StoreIoResult::Failure("cannot open " + path + " for writing");
  }
  return SaveStore(store, out);
}

StoreIoResult LoadStoreFromFile(const std::string& path, ExpertMapStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return StoreIoResult::Failure("cannot open " + path + " for reading");
  }
  return LoadStore(in, store);
}

StoreIoResult SaveStoreToFile(const ShardedMapStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return StoreIoResult::Failure("cannot open " + path + " for writing");
  }
  return SaveStore(store, out);
}

StoreIoResult LoadStoreFromFile(const std::string& path, ShardedMapStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return StoreIoResult::Failure("cannot open " + path + " for reading");
  }
  return LoadStore(in, store);
}

}  // namespace fmoe
