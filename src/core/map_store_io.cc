#include "src/core/map_store_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace fmoe {
namespace {

// Host-endian format; the magic doubles as an endianness canary (a byte-swapped reader sees a
// different magic and refuses the file).
constexpr char kMagic[8] = {'F', 'M', 'O', 'E', 'S', 'T', 'R', '1'};

struct StoreHeader {
  char magic[8];
  uint32_t num_layers = 0;
  uint32_t experts_per_layer = 0;
  uint32_t embedding_dim = 0;
  uint32_t reserved = 0;
  uint64_t record_count = 0;
};

template <typename T>
bool WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// The store's SoA index already holds maps and embeddings as contiguous float rows — exactly
// the on-disk record layout — so serialization is a raw write, no conversion buffer.
bool WriteFloats(std::ostream& out, std::span<const float> values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
  return static_cast<bool>(out);
}

bool ReadFloats(std::istream& in, size_t count, std::vector<double>* values) {
  std::vector<float> buffer(count);
  in.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) {
    return false;
  }
  values->assign(buffer.begin(), buffer.end());
  return true;
}

}  // namespace

StoreIoResult SaveStore(const ExpertMapStore& store, std::ostream& out) {
  const ModelConfig& model = store.model();
  StoreHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.num_layers = static_cast<uint32_t>(model.num_layers);
  header.experts_per_layer = static_cast<uint32_t>(model.experts_per_layer);
  header.embedding_dim =
      store.size() > 0 ? static_cast<uint32_t>(store.EmbeddingDim(0)) : 0;
  header.record_count = store.size();

  // All records must share the embedding dimension for a fixed record layout.
  for (size_t i = 0; i < store.size(); ++i) {
    if (store.EmbeddingDim(i) != header.embedding_dim) {
      return StoreIoResult::Failure("records have inconsistent embedding dimensions");
    }
  }
  if (!WritePod(out, header)) {
    return StoreIoResult::Failure("failed to write header");
  }

  StoreIoResult result;
  result.bytes = sizeof(header);
  for (size_t i = 0; i < store.size(); ++i) {
    const uint64_t request_id = store.Get(i).request_id;
    const int32_t iteration = store.Get(i).iteration;
    if (!WritePod(out, request_id) || !WritePod(out, iteration) ||
        !WriteFloats(out, store.MapRow(i)) || !WriteFloats(out, store.EmbeddingRow(i))) {
      return StoreIoResult::Failure("failed to write record " + std::to_string(i));
    }
    result.bytes += sizeof(request_id) + sizeof(iteration) +
                    (store.MapRow(i).size() + store.EmbeddingRow(i).size()) * sizeof(float);
    ++result.records;
  }
  return result;
}

StoreIoResult LoadStore(std::istream& in, ExpertMapStore* store) {
  StoreHeader header;
  if (!ReadPod(in, &header)) {
    return StoreIoResult::Failure("failed to read header");
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return StoreIoResult::Failure("bad magic (not an fMoE store file, or wrong endianness)");
  }
  const ModelConfig& model = store->model();
  if (header.num_layers != static_cast<uint32_t>(model.num_layers) ||
      header.experts_per_layer != static_cast<uint32_t>(model.experts_per_layer)) {
    std::ostringstream message;
    message << "model shape mismatch: file has " << header.num_layers << "x"
            << header.experts_per_layer << ", store expects " << model.num_layers << "x"
            << model.experts_per_layer;
    return StoreIoResult::Failure(message.str());
  }

  const size_t map_size = static_cast<size_t>(model.num_layers) *
                          static_cast<size_t>(model.experts_per_layer);
  StoreIoResult result;
  result.bytes = sizeof(header);
  // Parse into a staging buffer first so a truncated file leaves the store untouched.
  std::vector<StoredIteration> staged;
  staged.reserve(static_cast<size_t>(header.record_count));
  for (uint64_t i = 0; i < header.record_count; ++i) {
    uint64_t request_id = 0;
    int32_t iteration = 0;
    std::vector<double> map_values;
    std::vector<double> embedding;
    if (!ReadPod(in, &request_id) || !ReadPod(in, &iteration) ||
        !ReadFloats(in, map_size, &map_values) ||
        !ReadFloats(in, header.embedding_dim, &embedding)) {
      return StoreIoResult::Failure("truncated file at record " + std::to_string(i));
    }
    StoredIteration record;
    record.request_id = request_id;
    record.iteration = iteration;
    record.embedding = std::move(embedding);
    record.map = ExpertMap(model.num_layers, model.experts_per_layer);
    for (int layer = 0; layer < model.num_layers; ++layer) {
      record.map.SetLayer(layer,
                          std::span<const double>(map_values).subspan(
                              static_cast<size_t>(layer) *
                                  static_cast<size_t>(model.experts_per_layer),
                              static_cast<size_t>(model.experts_per_layer)));
    }
    result.bytes += sizeof(request_id) + sizeof(iteration) +
                    (map_size + header.embedding_dim) * sizeof(float);
    staged.push_back(std::move(record));
  }
  for (StoredIteration& record : staged) {
    store->Insert(std::move(record));
    ++result.records;
  }
  return result;
}

StoreIoResult SaveStoreToFile(const ExpertMapStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return StoreIoResult::Failure("cannot open " + path + " for writing");
  }
  return SaveStore(store, out);
}

StoreIoResult LoadStoreFromFile(const std::string& path, ExpertMapStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return StoreIoResult::Failure("cannot open " + path + " for reading");
  }
  return LoadStore(in, store);
}

}  // namespace fmoe
