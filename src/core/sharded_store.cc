#include "src/core/sharded_store.h"

#include <mutex>
#include <utility>

#include "src/util/logging.h"

namespace fmoe {
namespace {

// Strict-`>` reduce in shard order: lowest (shard, index) wins score ties, matching the
// per-row UpdateBest rule inside each shard.
void MergeShardResult(SearchResult* best, int shard, const SearchResult& candidate) {
  best->flops += candidate.flops;
  if (candidate.found && (!best->found || candidate.score > best->score)) {
    best->found = true;
    best->shard = shard;
    best->index = candidate.index;
    best->score = candidate.score;
  }
}

}  // namespace

ShardedMapStore::ShardedMapStore(const ModelConfig& model, size_t capacity,
                                 int prefetch_distance, StoreDedupPolicy dedup,
                                 MapPrecision precision, int num_shards, uint64_t router_seed)
    : router_(num_shards, router_seed) {
  FMOE_CHECK(num_shards >= 1);
  FMOE_CHECK(capacity > 0);
  const size_t s = static_cast<size_t>(num_shards);
  shards_.reserve(s);
  mutexes_.reserve(s);
  // Split the budget evenly, remainder to the low shard ids, floor of one record per shard
  // (an over-sharded tiny store degrades to 1-record shards rather than aborting).
  const size_t base = capacity / s;
  const size_t remainder = capacity % s;
  for (size_t i = 0; i < s; ++i) {
    size_t shard_capacity = base + (i < remainder ? 1 : 0);
    if (shard_capacity == 0) {
      shard_capacity = 1;
    }
    shards_.push_back(std::make_unique<ExpertMapStore>(model, shard_capacity,
                                                       prefetch_distance, dedup, precision));
    mutexes_.push_back(std::make_unique<std::shared_mutex>());
  }
}

size_t ShardedMapStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->size();
  }
  return total;
}

size_t ShardedMapStore::capacity() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->capacity();
  }
  return total;
}

size_t ShardedMapStore::MemoryBytes() const {
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock<std::shared_mutex> lock(*mutexes_[s]);
    total += shards_[s]->MemoryBytes();
  }
  return total;
}

size_t ShardedMapStore::MemoryBytesAtCapacity(int embedding_dim) const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->MemoryBytesAtCapacity(embedding_dim);
  }
  return total;
}

int ShardedMapStore::RouteEmbedding(std::span<const double> embedding) const {
  return router_.Route(embedding);
}

uint64_t ShardedMapStore::Insert(StoredIteration record) {
  const size_t target = static_cast<size_t>(router_.Route(record.embedding));
  std::unique_lock<std::shared_mutex> lock(*mutexes_[target]);
  return shards_[target]->Insert(std::move(record));
}

SearchResult ShardedMapStore::SemanticSearch(std::span<const double> embedding) const {
  SearchResult best;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock<std::shared_mutex> lock(*mutexes_[s]);
    MergeShardResult(&best, static_cast<int>(s), shards_[s]->SemanticSearch(embedding));
  }
  return best;
}

SearchResult ShardedMapStore::TrajectorySearch(std::span<const double> prefix,
                                               int prefix_layers) const {
  SearchResult best;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock<std::shared_mutex> lock(*mutexes_[s]);
    MergeShardResult(&best, static_cast<int>(s),
                     shards_[s]->TrajectorySearch(prefix, prefix_layers));
  }
  return best;
}

const StoredIteration& ShardedMapStore::Get(int shard, size_t index) const {
  FMOE_CHECK(shard >= 0 && shard < num_shards());
  return shards_[static_cast<size_t>(shard)]->Get(index);
}

const StoredIteration& ShardedMapStore::Get(size_t global_index) const {
  for (const auto& shard : shards_) {
    if (global_index < shard->size()) {
      return shard->Get(global_index);
    }
    global_index -= shard->size();
  }
  FMOE_CHECK_MSG(false, "global index out of range");
  return shards_.front()->Get(0);  // Unreachable; silences the return-path warning.
}

void ShardedMapStore::Clear() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::unique_lock<std::shared_mutex> lock(*mutexes_[s]);
    shards_[s]->Clear();
  }
}

void ShardedMapStore::set_search_threads(int threads) {
  for (const auto& shard : shards_) {
    shard->set_search_threads(threads);
  }
}

// ---- ShardedTrajectorySession ----

ShardedTrajectorySession::ShardedTrajectorySession(const ShardedMapStore* store)
    : store_(store) {
  FMOE_CHECK(store != nullptr);
  sessions_.reserve(static_cast<size_t>(store->num_shards()));
  for (int s = 0; s < store->num_shards(); ++s) {
    std::shared_lock<std::shared_mutex> lock(store->shard_mutex(s));
    sessions_.emplace_back(&store->shard(s));
  }
}

void ShardedTrajectorySession::Reset() {
  observed_layers_ = 0;
  for (size_t s = 0; s < sessions_.size(); ++s) {
    std::shared_lock<std::shared_mutex> lock(store_->shard_mutex(static_cast<int>(s)));
    sessions_[s].Reset();
  }
}

uint64_t ShardedTrajectorySession::ObserveLayer(std::span<const double> probs) {
  uint64_t flops = 0;
  // Shard order: flops accumulate deterministically, and a shard whose generation moved
  // rebuilds only its own dots (n_s·2·prefix) — untouched shards extend incrementally.
  for (size_t s = 0; s < sessions_.size(); ++s) {
    std::shared_lock<std::shared_mutex> lock(store_->shard_mutex(static_cast<int>(s)));
    flops += sessions_[s].ObserveLayer(probs);
  }
  ++observed_layers_;
  return flops;
}

SearchResult ShardedTrajectorySession::CurrentBest() {
  SearchResult best;
  for (size_t s = 0; s < sessions_.size(); ++s) {
    std::shared_lock<std::shared_mutex> lock(store_->shard_mutex(static_cast<int>(s)));
    MergeShardResult(&best, static_cast<int>(s), sessions_[s].CurrentBest());
  }
  return best;
}

}  // namespace fmoe
