// Expert Map Store (§3.2, §4.4).
//
// Capacity-bounded store of historical iteration records — each an expert map plus the
// iteration's semantic embedding. Supports the two searches of §4.2 (semantic cosine over
// embeddings, trajectory cosine over map prefixes) and, when full, deduplicates on insert by
// the unified redundancy score RDY = (d/L)·score_sem + ((L−d)/L)·score_traj: the stored record
// most redundant with the incoming one is replaced, keeping the store diverse.
#ifndef FMOE_SRC_CORE_MAP_STORE_H_
#define FMOE_SRC_CORE_MAP_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/expert_map.h"
#include "src/moe/model_config.h"

namespace fmoe {

struct StoredIteration {
  ExpertMap map;
  std::vector<double> embedding;  // Iteration-level semantic embedding.
  uint64_t request_id = 0;
  int iteration = 0;
};

// Replacement policy when the store is full: the paper's redundancy-score deduplication, or
// plain FIFO replacement (ablation baseline).
enum class StoreDedupPolicy {
  kRedundancy,
  kFifo,
};

struct SearchResult {
  bool found = false;
  size_t index = 0;
  double score = 0.0;   // Cosine similarity in [-1, 1].
  uint64_t flops = 0;   // Work the search performed (feeds the async-overhead model).
};

class ExpertMapStore {
 public:
  ExpertMapStore(const ModelConfig& model, size_t capacity, int prefetch_distance,
                 StoreDedupPolicy dedup = StoreDedupPolicy::kRedundancy);

  size_t size() const { return records_.size(); }
  size_t capacity() const { return capacity_; }
  const ModelConfig& model() const { return model_; }
  int prefetch_distance() const { return prefetch_distance_; }
  const StoredIteration& Get(size_t index) const;

  // Inserts a record; when at capacity, replaces the most redundant existing record (by RDY).
  // Returns the work performed (0 flops while filling, one full RDY pass when deduplicating).
  uint64_t Insert(StoredIteration record);

  // Highest-cosine record by iteration embedding (Eq. 4).
  SearchResult SemanticSearch(std::span<const double> embedding) const;

  // Highest-cosine record by trajectory prefix of `prefix_layers` layers (Eq. 5).
  SearchResult TrajectorySearch(std::span<const double> prefix, int prefix_layers) const;

  // fp32-equivalent CPU memory footprint of everything stored (Fig. 16).
  size_t MemoryBytes() const;
  // Footprint the store would have at full capacity (for sizing tables).
  size_t MemoryBytesAtCapacity(int embedding_dim) const;

  void Clear() {
    records_.clear();
    next_fifo_slot_ = 0;
  }

 private:
  double RedundancyScore(const StoredIteration& a, const StoredIteration& b) const;

  ModelConfig model_;
  size_t capacity_;
  int prefetch_distance_;
  StoreDedupPolicy dedup_;
  size_t next_fifo_slot_ = 0;
  std::vector<StoredIteration> records_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_CORE_MAP_STORE_H_
