// Expert Map Store (§3.2, §4.4) and its search engine.
//
// Capacity-bounded store of historical iteration records — each an expert map plus the
// iteration's semantic embedding. Supports the two searches of §4.2 (semantic cosine over
// embeddings, trajectory cosine over map prefixes) and, when full, deduplicates on insert by
// the unified redundancy score RDY = (d/L)·score_sem + ((L−d)/L)·score_traj: the stored record
// most redundant with the incoming one is replaced, keeping the store diverse.
//
// Search engine layout (SoA index). Alongside the record list the store maintains a
// structure-of-arrays index that every search runs against:
//   * map_cols_        — the trajectory search matrix, layer-expert-major: column (l·J + j)
//                        holds map_i[l, j] for every record i, contiguously (column stride =
//                        capacity). A trajectory query touches exactly the columns of its
//                        observed layers, so both the one-shot prefix scan and the per-layer
//                        incremental extension are perfectly sequential streaming passes —
//                        row-major storage would read l·J useful floats per L·J-float row and
//                        stall on strided loads.
//   * map_rows_        — the same maps row-major (row i = record i's L·J floats), kept as the
//                        materialized per-record view for persistence, inspection, and tests.
//   * emb_rows_        — one flat row-major float matrix of embeddings (stride = largest
//                        embedding dim seen; per-record true dims kept in emb_dims_).
//   * emb_norms_ / inv_emb_norms_          — precomputed ‖embedding_i‖ and its inverse.
//   * prefix_sqnorms_ / inv_prefix_norms_  — per record, the running squared norm of every map
//                        prefix (entry (i, l) = ‖map_i[0..l)‖² for l = 0..L) and the inverse
//                        norms 1/‖map_i[0..l)‖. Inverses store 0 for zero norms, so scoring is
//                        a branch-free multiply that lands exactly on the zero-norm → 0 cosine
//                        convention.
// With inverse norms precomputed, a cosine is one batched dot product plus one multiply — no
// sqrt or divide anywhere on the scan (AccumulateColumns / DotBatched / CosineAgainstRows in
// src/util/math.h). Optional search_threads > 1 partitions the rows across threads; per-row
// arithmetic is partition-independent and the argmax reduction is performed in row order
// afterwards, so results (including lowest-index tie-breaks) are bit-identical to the
// single-threaded scan.
//
// Quantized column storage (DESIGN.md §5g). The trajectory matrix dominates store memory
// (map_dim · capacity values vs one embedding row per record), so it can optionally be held
// at reduced precision, chosen per store at construction:
//   * kFp32 — exact floats; the bitwise reference every golden report is pinned to.
//   * kFp16 — IEEE binary16 per value (2× smaller). Scans widen each value back to float
//     (exact), so a scan equals the fp32 scan over the half-rounded values bit for bit.
//   * kInt8 — per-column affine quantization (4× smaller): value ≈ scale_k · q + offset_k
//     with q in [0, 255]. Each column tracks a monotone-growing value range (with margin);
//     a value outside it triggers an O(size) requantization of that column from the exact
//     record data. Scans fold the per-column parameters into the query coefficients
//     (FoldQ8Coeffs) and run dequantize-free int32 accumulation — exact integer arithmetic,
//     so partition-independence holds by construction.
// Only the column matrix is quantized: queries, embeddings, and the stored records stay
// exact. map_rows_ and the prefix norms always hold the *dequantized* values — exactly what
// the scans see — so cosine normalization stays consistent at any precision. The quantized
// precisions are tolerance-checked (not byte-exact) end to end; see golden_metrics_test.
//
// Incremental trajectory search. HybridMatcher re-matches a *growing* prefix; recomputing the
// cosine from scratch is O(l·J·N) per rematch, O(L²·J·N) per iteration. TrajectorySearchSession
// instead keeps one running dot product per record and extends it by only the newly observed
// layer — O(J·N) per ObserveLayer, O(L·J·N) per iteration — and consults the precomputed
// prefix norms at rematch time. Sessions watch the store's generation counter: any insert or
// clear invalidates the cached dots and the next call transparently rebuilds them (charging
// the full rebuild work to its flops).
#ifndef FMOE_SRC_CORE_MAP_STORE_H_
#define FMOE_SRC_CORE_MAP_STORE_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/core/expert_map.h"
#include "src/moe/model_config.h"
#include "src/util/math.h"

namespace fmoe {

struct StoredIteration {
  ExpertMap map;
  std::vector<double> embedding;  // Iteration-level semantic embedding.
  uint64_t request_id = 0;
  int iteration = 0;
};

// Replacement policy when the store is full: the paper's redundancy-score deduplication, or
// plain FIFO replacement (ablation baseline).
enum class StoreDedupPolicy {
  kRedundancy,
  kFifo,
};

// Storage precision of the trajectory search matrix (see the header comment). The numeric
// values are the on-disk codes of map_store_io (fp32 = 0 keeps old files byte-identical).
enum class MapPrecision : uint8_t {
  kFp32 = 0,
  kFp16 = 1,
  kInt8 = 2,
};

// "fp32" / "fp16" / "int8".
const char* MapPrecisionName(MapPrecision precision);
// Parses the names above; returns false (leaving `out` untouched) on anything else.
bool ParseMapPrecision(std::string_view text, MapPrecision* out);

struct SearchResult {
  bool found = false;
  size_t index = 0;     // Index within the owning shard (== global index for 1-shard stores).
  int shard = 0;        // Shard the record lives in (always 0 for a bare ExpertMapStore).
  double score = 0.0;   // Cosine similarity in [-1, 1].
  uint64_t flops = 0;   // Work the search performed (feeds the async-overhead model).
};

class ExpertMapStore {
 public:
  ExpertMapStore(const ModelConfig& model, size_t capacity, int prefetch_distance,
                 StoreDedupPolicy dedup = StoreDedupPolicy::kRedundancy,
                 MapPrecision precision = MapPrecision::kFp32);

  size_t size() const { return records_.size(); }
  size_t capacity() const { return capacity_; }
  const ModelConfig& model() const { return model_; }
  int prefetch_distance() const { return prefetch_distance_; }
  MapPrecision map_precision() const { return precision_; }
  const StoredIteration& Get(size_t index) const;

  // Inserts a record; when at capacity, replaces the most redundant existing record (by RDY).
  // Returns the work performed (0 flops while filling, one full RDY pass when deduplicating).
  uint64_t Insert(StoredIteration record);

  // Highest-cosine record by iteration embedding (Eq. 4). Records whose embedding dimension
  // differs from the query are skipped and not charged.
  SearchResult SemanticSearch(std::span<const double> embedding) const;

  // Highest-cosine record by trajectory prefix of `prefix_layers` layers (Eq. 5). One-shot
  // form; use TrajectorySearchSession for the per-layer incremental path.
  SearchResult TrajectorySearch(std::span<const double> prefix, int prefix_layers) const;

  // CPU memory footprint of everything stored at the active precision (Fig. 16): map rows at
  // 4/2/1 bytes per value, embeddings at fp32, plus the per-column scale/offset table for
  // int8 stores.
  size_t MemoryBytes() const;
  // Footprint the store would have at full capacity (for sizing tables).
  size_t MemoryBytesAtCapacity(int embedding_dim) const;

  void Clear();

  // ---- SoA search-engine views ----

  // Flattened map row of record i (L·J floats; layer l occupies [l·J, (l+1)·J)). At reduced
  // precision this is the *dequantized* view — the values the scans actually compare.
  std::span<const float> MapRow(size_t index) const;
  // Base pointer of the row-major map matrix (row stride = map_dim()); null when empty.
  const float* map_rows_data() const { return map_rows_.data(); }
  // Base pointer of the fp32 layer-expert-major search matrix: column k = l·J + j holds
  // map_i[l, j] for records i = 0..size(), with capacity() floats between consecutive
  // columns. Only populated when map_precision() == kFp32 (see ScanMapColumns for the
  // precision-independent scan entry point).
  const float* map_cols_data() const { return map_cols_.data(); }
  // Per-column affine parameters of the int8 matrix (value = scale_k·q + offset_k), indexed
  // by column k = l·J + j. Only populated when map_precision() == kInt8.
  const float* col_scales_data() const { return col_scales_.data(); }
  const float* col_offsets_data() const { return col_offsets_.data(); }
  // Row length of the map matrix: num_layers · experts_per_layer.
  int map_dim() const { return map_dim_; }
  // Precomputed 1/‖map_i[0..l)‖ lookup table, stride num_layers + 1 per record; entry (i, l)
  // is 0 when the prefix has zero norm.
  const double* inv_prefix_norms_data() const { return inv_prefix_norms_.data(); }
  // Embedding row of record i (exactly the record's embedding dimension).
  std::span<const float> EmbeddingRow(size_t index) const;
  size_t EmbeddingDim(size_t index) const;
  double EmbeddingNorm(size_t index) const;
  // ‖map_i[0 .. prefix_layers)‖ from the precomputed running squared norms.
  double PrefixNorm(size_t index, int prefix_layers) const;

  // Precision-independent streaming scan over the column matrix:
  //   out[i - begin] += Σ_k coeffs[k] · column(first_col + k)[record i],  i in [begin, end)
  // with dequantized column semantics. For kInt8, `folded` must point at the result of
  // FoldQ8ScanCoeffs(coeffs, first_col, ...) — folded once per scan and shared read-only by
  // partitioned callers; other precisions ignore it (null is fine).
  void ScanMapColumns(std::span<const float> coeffs, size_t first_col, size_t begin,
                      size_t end, const Q8Coeffs* folded, double* out) const;
  // Folds `coeffs` against the parameters of columns [first_col, first_col + coeffs.size()).
  // No-op unless map_precision() == kInt8. The scratch's buffer is reused across calls.
  void FoldQ8ScanCoeffs(std::span<const float> coeffs, size_t first_col,
                        Q8Coeffs* folded) const;

  // Bumped on every mutation (insert, replace, clear); lets sessions detect staleness.
  uint64_t generation() const { return generation_; }

  // Number of threads full-store scans may use (default 1). The reduction is deterministic:
  // any thread count returns bit-identical results, ties broken toward the lowest index.
  void set_search_threads(int threads);
  int search_threads() const { return search_threads_; }

 private:
  // Rebuilds the SoA row, norms, and prefix norms for records_[slot].
  void IndexRecord(size_t slot);
  // Recomputes the prefix-norm tables of records_[slot] from its map_rows_ row.
  void RebuildPrefixNorms(size_t slot);
  // Stores value v into column k of record `slot` (all precisions) and returns the
  // dequantized value the scans will see.
  float StoreColumnValue(size_t k, size_t slot, float v);
  // Widens column k's representable range to cover v (with margin) and re-encodes the column
  // for every record from the exact record data. Sets norms_dirty_.
  void RequantizeColumn(size_t k, float v);
  // Widens the embedding matrix stride to at least `dim`, repacking existing rows.
  void GrowEmbeddingStride(size_t dim);

  ModelConfig model_;
  size_t capacity_;
  int prefetch_distance_;
  StoreDedupPolicy dedup_;
  MapPrecision precision_;
  size_t next_fifo_slot_ = 0;
  int map_dim_ = 0;  // num_layers * experts_per_layer.
  int search_threads_ = 1;
  uint64_t generation_ = 0;
  bool norms_dirty_ = false;  // Set by RequantizeColumn; cleared by IndexRecord.

  std::vector<StoredIteration> records_;  // Record data + metadata (Get / persistence).

  // SoA search index; see the layout comment at the top of this header. Exactly one of the
  // three column matrices is allocated, per precision_ (fixed stride = capacity_).
  std::vector<float> map_cols_;         // kFp32: map_dim_ columns x capacity_.
  std::vector<uint16_t> map_cols16_;    // kFp16: binary16 bit patterns, same layout.
  std::vector<uint8_t> map_cols8_;      // kInt8: affine codes, same layout.
  std::vector<float> col_scales_;       // kInt8: per-column scale (map_dim_).
  std::vector<float> col_offsets_;      // kInt8: per-column offset (map_dim_).
  std::vector<float> col_range_lo_;     // kInt8: monotone-growing representable range.
  std::vector<float> col_range_hi_;
  std::vector<float> map_rows_;         // size() x map_dim_ (row-major dequantized view).
  std::vector<float> emb_rows_;         // size() x emb_stride_ (zero-padded).
  size_t emb_stride_ = 0;
  std::vector<size_t> emb_dims_;
  std::vector<double> emb_norms_;
  std::vector<double> inv_emb_norms_;
  std::vector<double> prefix_sqnorms_;    // size() x (num_layers + 1), cumulative.
  std::vector<double> inv_prefix_norms_;  // size() x (num_layers + 1); 0 for zero norms.
};

// Stateful incremental trajectory search (§4.2) over a growing prefix.
//
// One session serves one inference iteration: Reset() at iteration start, ObserveLayer() per
// gate output (extends the running per-record dot products by the new layer), CurrentBest()
// whenever the matcher re-matches. Each call returns/reports the flops it actually performed,
// so the async-overhead model (Fig. 15) is charged for incremental — not recomputed — work.
// The session tolerates concurrent store mutation (other batch slots inserting records):
// a generation mismatch triggers a transparent full rebuild of the cached dots.
class TrajectorySearchSession {
 public:
  explicit TrajectorySearchSession(const ExpertMapStore* store);

  // Forgets the observed prefix and re-syncs with the store; call at iteration start.
  void Reset();

  // Extends the observed trajectory by one layer's gate distribution (J values). Returns the
  // flops performed: 2·J per record to extend the running dots (or a full-prefix rebuild when
  // the store changed underneath the session).
  uint64_t ObserveLayer(std::span<const double> probs);

  // Best-cosine record over the currently observed prefix. `flops` covers the score
  // normalization (3 per record) plus any rebuild this call had to perform.
  SearchResult CurrentBest();

  int observed_layers() const { return observed_layers_; }

 private:
  bool IsStale() const;
  // Recomputes all running dots over the full observed prefix; returns the flops spent.
  uint64_t Rebuild();

  const ExpertMapStore* store_;  // Not owned.
  uint64_t generation_ = 0;
  int observed_layers_ = 0;
  std::vector<float> prefix_;    // Observed prefix, float-quantized like the stored rows.
  double prefix_sqnorm_ = 0.0;
  std::vector<double> dots_;     // Running dot(prefix, map row) per record.
  Q8Coeffs q8_scratch_;          // Reused fold buffer (kInt8 stores only) — no steady-state
                                 // allocation after the first fold at a given prefix length.
};

}  // namespace fmoe

#endif  // FMOE_SRC_CORE_MAP_STORE_H_
