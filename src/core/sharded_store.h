// Semantic-cluster sharding of the Expert Map Store (DESIGN.md §5i).
//
// The monolithic ExpertMapStore has a single generation counter: any insert invalidates every
// live TrajectorySearchSession and forces a full prefix rebuild, so B concurrent matcher
// sessions serialize on whichever slot inserted last. ShardedMapStore splits the store into S
// ExpertMapStore shards keyed by a consistent hash of the record's semantic embedding
// (SemanticShardRouter): records from one semantic cluster concentrate in one shard, each
// shard keeps its own SoA columns and its own generation counter, and an insert into shard A
// never touches shard B — sessions scanning B keep their cached dots.
//
// Determinism contract (the shard-major reduce). Every search scans shards in ascending shard
// id and reduces with the same strict-`>` rule the row scan uses, so the winner is the
// lowest-(shard, index) record among score ties and results are independent of thread count.
// With S == 1 every call delegates to the single shard with the full capacity — bitwise
// identical to the pre-shard ExpertMapStore at every precision (pinned by map_shard_test).
//
// Concurrency. Each shard carries a shared_mutex: Insert takes the target shard's lock
// exclusively, searches and session reads take it shared. Cross-shard consistency is not a
// goal (and not needed — searches are heuristics over historical data); the locks exist so
// concurrent matcher sessions and inserters are race-free under TSan, not to provide a global
// snapshot. Lock scope is one shard per acquisition and the shards are independent, so there
// is no lock ordering to violate.
#ifndef FMOE_SRC_CORE_SHARDED_STORE_H_
#define FMOE_SRC_CORE_SHARDED_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "src/core/map_store.h"
#include "src/core/shard_router.h"
#include "src/moe/model_config.h"

namespace fmoe {

class ShardedMapStore {
 public:
  // `capacity` is the total record budget, split evenly across shards (remainder to the
  // lowest shard ids, floor of 1 record per shard). `seed` fixes the router's hyperplanes
  // and ring; the same seed must be used to reload a store file into the same layout.
  ShardedMapStore(const ModelConfig& model, size_t capacity, int prefetch_distance,
                  StoreDedupPolicy dedup = StoreDedupPolicy::kRedundancy,
                  MapPrecision precision = MapPrecision::kFp32, int num_shards = 1,
                  uint64_t router_seed = 0);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  ExpertMapStore& shard(int s) { return *shards_[static_cast<size_t>(s)]; }
  const ExpertMapStore& shard(int s) const { return *shards_[static_cast<size_t>(s)]; }

  // Aggregates over all shards.
  size_t size() const;
  size_t capacity() const;
  size_t MemoryBytes() const;
  size_t MemoryBytesAtCapacity(int embedding_dim) const;

  const ModelConfig& model() const { return shards_.front()->model(); }
  int prefetch_distance() const { return shards_.front()->prefetch_distance(); }
  MapPrecision map_precision() const { return shards_.front()->map_precision(); }
  int map_dim() const { return shards_.front()->map_dim(); }
  const SemanticShardRouter& router() const { return router_; }

  // Shard the router assigns to `embedding` (what Insert will use).
  int RouteEmbedding(std::span<const double> embedding) const;

  // Routes the record to its semantic shard and inserts there (dedup, if any, is per shard —
  // the RDY pass only scans the target shard). Returns the flops performed.
  uint64_t Insert(StoredIteration record);

  // Best record across all shards; result.shard/result.index locate it. Shards are scanned
  // in ascending id and reduced with strict `>`, so ties go to the lowest (shard, index).
  SearchResult SemanticSearch(std::span<const double> embedding) const;
  SearchResult TrajectorySearch(std::span<const double> prefix, int prefix_layers) const;

  const StoredIteration& Get(int shard, size_t index) const;
  // Shard-major global indexing (shard 0's records, then shard 1's, ...): the view tests,
  // the inspector example, and persistence iterate. Global indices shift as shards fill, so
  // hold no global index across an Insert.
  const StoredIteration& Get(size_t global_index) const;

  uint64_t generation(int s) const { return shards_[static_cast<size_t>(s)]->generation(); }

  void Clear();
  void set_search_threads(int threads);
  int search_threads() const { return shards_.front()->search_threads(); }

  // Shard s's reader-writer lock. Sessions (and any out-of-band reader) take it shared;
  // Insert/Clear take it exclusive. Exposed so ShardedTrajectorySession can pair its cached
  // state with the same lock instance the store's own mutators use.
  std::shared_mutex& shard_mutex(int s) const { return *mutexes_[static_cast<size_t>(s)]; }

 private:
  SemanticShardRouter router_;
  std::vector<std::unique_ptr<ExpertMapStore>> shards_;
  mutable std::vector<std::unique_ptr<std::shared_mutex>> mutexes_;
};

// Per-shard incremental trajectory search: one TrajectorySearchSession per shard, each
// watching its own shard's generation. An insert into shard A leaves every other shard's
// cached dots valid — the next ObserveLayer rebuilds A's dots only (n_A·2·prefix flops
// instead of n·2·prefix), which is the whole point of sharding (see map_shard_test's
// shard-invariance property). The shard-major reduce in CurrentBest keeps results bitwise
// identical to the monolithic session at S == 1.
class ShardedTrajectorySession {
 public:
  explicit ShardedTrajectorySession(const ShardedMapStore* store);

  void Reset();
  uint64_t ObserveLayer(std::span<const double> probs);
  SearchResult CurrentBest();
  int observed_layers() const { return observed_layers_; }

 private:
  const ShardedMapStore* store_;  // Not owned.
  std::vector<TrajectorySearchSession> sessions_;  // One per shard, in shard order.
  int observed_layers_ = 0;
};

}  // namespace fmoe

#endif  // FMOE_SRC_CORE_SHARDED_STORE_H_
