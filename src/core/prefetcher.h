// Similarity-aware expert selection and prefetch prioritisation (§4.3, §4.5).
//
// Given a matched distribution P_l with similarity score s, fMoE computes the dynamic
// selection threshold δ_l = Clip(1 − s, 0, 1) and picks the smallest expert set whose summed
// probability reaches δ_l, with at least K+1 experts (Eq. 6–8): low-confidence matches
// prefetch more experts to hedge mispredictions, high-confidence matches prefetch fewer to
// save memory. Selected experts carry the prefetch priority PRI = p / (l − l_now).
#ifndef FMOE_SRC_CORE_PREFETCHER_H_
#define FMOE_SRC_CORE_PREFETCHER_H_

#include <span>
#include <vector>

namespace fmoe {

struct PrefetchCandidate {
  int expert = 0;
  double probability = 0.0;
  double priority = 0.0;  // PRI^prefetch; higher = transfer sooner.
};

struct PrefetcherOptions {
  bool dynamic_threshold = true;  // The δ mechanism; false = fixed top-(K+1) (Map T+S ablation).
  int min_extra_experts = 1;      // Selection floor is top_k + this (Constraint 8: |E| > K).
};

// Computes δ_l from a similarity score.
double SelectionThreshold(double score);

// Selects the experts to prefetch for `target_layer` issued from `current_layer` (use -1 at
// iteration start). Candidates come back sorted by descending priority, ready to enqueue.
std::vector<PrefetchCandidate> SelectExperts(std::span<const double> probs, double score,
                                             int top_k, int target_layer, int current_layer,
                                             const PrefetcherOptions& options);

}  // namespace fmoe

#endif  // FMOE_SRC_CORE_PREFETCHER_H_
