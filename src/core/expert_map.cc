#include "src/core/expert_map.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/math.h"

namespace fmoe {

ExpertMap::ExpertMap(int num_layers, int experts_per_layer)
    : num_layers_(num_layers),
      experts_per_layer_(experts_per_layer),
      data_(static_cast<size_t>(num_layers) * static_cast<size_t>(experts_per_layer), 0.0) {
  FMOE_CHECK(num_layers > 0 && experts_per_layer > 0);
}

ExpertMap ExpertMap::FromLayerProbs(const std::vector<std::vector<double>>& layer_probs) {
  FMOE_CHECK(!layer_probs.empty());
  ExpertMap map(static_cast<int>(layer_probs.size()),
                static_cast<int>(layer_probs.front().size()));
  for (size_t l = 0; l < layer_probs.size(); ++l) {
    map.SetLayer(static_cast<int>(l), layer_probs[l]);
  }
  return map;
}

std::span<const double> ExpertMap::Layer(int layer) const {
  FMOE_CHECK(layer >= 0 && layer < num_layers_);
  return std::span<const double>(data_).subspan(
      static_cast<size_t>(layer) * static_cast<size_t>(experts_per_layer_),
      static_cast<size_t>(experts_per_layer_));
}

void ExpertMap::SetLayer(int layer, std::span<const double> probs) {
  FMOE_CHECK(layer >= 0 && layer < num_layers_);
  FMOE_CHECK(static_cast<int>(probs.size()) == experts_per_layer_);
  std::copy(probs.begin(), probs.end(),
            data_.begin() + static_cast<ptrdiff_t>(layer) * experts_per_layer_);
}

double ExpertMap::Probability(int layer, int expert) const {
  FMOE_CHECK(layer >= 0 && layer < num_layers_);
  FMOE_CHECK(expert >= 0 && expert < experts_per_layer_);
  return data_[static_cast<size_t>(layer) * static_cast<size_t>(experts_per_layer_) +
               static_cast<size_t>(expert)];
}

std::span<const double> ExpertMap::Prefix(int layers) const {
  FMOE_CHECK(layers >= 0 && layers <= num_layers_);
  return std::span<const double>(data_).subspan(
      0, static_cast<size_t>(layers) * static_cast<size_t>(experts_per_layer_));
}

std::vector<uint64_t> ExpertMap::TopKCounts(int top_k) const {
  std::vector<uint64_t> counts(static_cast<size_t>(num_layers_) *
                                   static_cast<size_t>(experts_per_layer_),
                               0);
  for (int l = 0; l < num_layers_; ++l) {
    for (size_t idx : TopKIndices(Layer(l), static_cast<size_t>(top_k))) {
      counts[static_cast<size_t>(l) * static_cast<size_t>(experts_per_layer_) + idx]++;
    }
  }
  return counts;
}

}  // namespace fmoe
