// Expert map: the paper's core data structure (§4.1).
//
// An expert map records, for one inference iteration, the gate probability distribution over
// all J experts at every one of the L MoE layers: map_i = {P_1, ..., P_L}. Layers are stored
// row-major in one contiguous buffer so a trajectory prefix (the first l layers) is a
// contiguous span — exactly the vector the trajectory cosine search (Eq. 5) operates on.
#ifndef FMOE_SRC_CORE_EXPERT_MAP_H_
#define FMOE_SRC_CORE_EXPERT_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/moe/model_config.h"

namespace fmoe {

class ExpertMap {
 public:
  ExpertMap() = default;
  ExpertMap(int num_layers, int experts_per_layer);

  // Builds a map from per-layer probability rows (each of length J).
  static ExpertMap FromLayerProbs(const std::vector<std::vector<double>>& layer_probs);

  int num_layers() const { return num_layers_; }
  int experts_per_layer() const { return experts_per_layer_; }
  bool empty() const { return data_.empty(); }

  // Probability distribution of one layer.
  std::span<const double> Layer(int layer) const;
  void SetLayer(int layer, std::span<const double> probs);
  double Probability(int layer, int expert) const;

  // Flattened first `layers` layers (the trajectory prefix).
  std::span<const double> Prefix(int layers) const;
  // The entire flattened map.
  std::span<const double> Flat() const { return data_; }

  // Coarse-grained view: per-expert activation counts aggregated over top-K selections —
  // this recovers exactly what request-level trackers like MoE-Infinity's EAM store, which is
  // how the paper argues expert maps generalise existing methods (§4.1).
  std::vector<uint64_t> TopKCounts(int top_k) const;

  // fp32-equivalent storage footprint (what the paper's store holds), in bytes.
  size_t StorageBytes() const { return data_.size() * sizeof(float); }

 private:
  int num_layers_ = 0;
  int experts_per_layer_ = 0;
  std::vector<double> data_;  // Row-major [layer][expert].
};

}  // namespace fmoe

#endif  // FMOE_SRC_CORE_EXPERT_MAP_H_
