#include "src/core/fmoe_policy.h"

#include "src/util/logging.h"

namespace fmoe {

FmoePolicy::FmoePolicy(const ModelConfig& model, int prefetch_distance,
                       const FmoeOptions& options)
    : model_(model),
      prefetch_distance_(prefetch_distance),
      options_(options),
      store_(model, options.store_capacity, prefetch_distance, options.store_dedup) {
  store_.set_search_threads(options.search_threads);
}

HybridMatcher& FmoePolicy::MatcherForSlot(int slot) {
  FMOE_CHECK(slot >= 0);
  while (matchers_.size() <= static_cast<size_t>(slot)) {
    matchers_.push_back(std::make_unique<HybridMatcher>(&store_, model_, prefetch_distance_,
                                                        options_.matcher));
  }
  return *matchers_[static_cast<size_t>(slot)];
}

void FmoePolicy::ReportSearchWork(EngineHandle& engine, HybridMatcher& matcher) {
  const uint64_t flops = matcher.ConsumeSearchFlops();
  if (flops > 0) {
    engine.AddAsyncWork(OverheadCategory::kMapMatching,
                        static_cast<double>(flops) / options_.search_throughput_flops);
  }
}

void FmoePolicy::IssuePrefetches(EngineHandle& engine, HybridMatcher& matcher, int target_layer,
                                 int current_layer) {
  const Guidance guidance = matcher.GuidanceFor(target_layer);
  if (!guidance.valid) {
    return;
  }
  const std::vector<PrefetchCandidate> candidates =
      SelectExperts(guidance.probs, guidance.score, model_.top_k, target_layer, current_layer,
                    options_.prefetcher);
  // Re-stamp the whole layer's distribution on resident experts so eviction priorities track
  // the *current* matched map, not stale history (§4.5).
  for (int j = 0; j < model_.experts_per_layer; ++j) {
    engine.SetCachedProbability(ExpertId{target_layer, j},
                                guidance.probs[static_cast<size_t>(j)]);
  }
  for (const PrefetchCandidate& candidate : candidates) {
    const ExpertId id{target_layer, candidate.expert};
    if (options_.low_precision_threshold > 0.0 &&
        candidate.probability < options_.low_precision_threshold) {
      // Less-critical expert: stream a reduced-precision copy (lossy extension).
      engine.PrefetchAsyncSized(id, candidate.probability, candidate.priority,
                                options_.low_precision_fraction);
    } else {
      engine.PrefetchAsync(id, candidate.probability, candidate.priority);
    }
  }
  // Issuing transfers is a handful of queue operations per candidate — async, cheap.
  engine.AddAsyncWork(OverheadCategory::kPrefetchIssue,
                      1.0e-6 * static_cast<double>(candidates.size()));
}

void FmoePolicy::OnIterationStart(EngineHandle& engine, const IterationContext& context) {
  engine.AddOverhead(OverheadCategory::kContextCollection,
                     options_.context_collection_sec_per_layer * model_.num_layers);
  HybridMatcher& matcher = MatcherForSlot(context.batch_slot);
  matcher.BeginIteration(context.embedding);
  ReportSearchWork(engine, matcher);
  if (matcher.semantic_found()) {
    semantic_score_sum_ += matcher.semantic_score();
    ++semantic_score_count_;
  }
  // Semantic-matched guidance covers the layers no trajectory can reach yet (§4.2).
  const int first_window = std::min(prefetch_distance_, model_.num_layers);
  for (int target = 0; target < first_window; ++target) {
    IssuePrefetches(engine, matcher, target, /*current_layer=*/-1);
  }
}

void FmoePolicy::OnGateOutput(EngineHandle& engine, const IterationContext& context, int layer,
                              const std::vector<double>& probs,
                              const std::vector<int>& /*activated*/) {
  HybridMatcher& matcher = MatcherForSlot(context.batch_slot);
  matcher.ObserveLayer(layer, probs);
  ReportSearchWork(engine, matcher);
  if (matcher.trajectory_found()) {
    trajectory_score_sum_ += matcher.trajectory_score();
    ++trajectory_score_count_;
  }
  const int target = layer + prefetch_distance_;
  if (target < model_.num_layers) {
    IssuePrefetches(engine, matcher, target, layer);
  }
}

void FmoePolicy::OnIterationEnd(EngineHandle& engine, const IterationContext& context,
                                const std::vector<std::vector<double>>& layer_probs) {
  if (log_scores_) {
    const HybridMatcher& matcher = MatcherForSlot(context.batch_slot);
    IterationScoreSample sample;
    sample.semantic = matcher.semantic_score();
    sample.semantic_valid = matcher.semantic_found();
    sample.trajectory = matcher.trajectory_score();
    sample.trajectory_valid = matcher.trajectory_found();
    score_log_.push_back(sample);
  }
  StoredIteration record;
  record.map = ExpertMap::FromLayerProbs(layer_probs);
  record.embedding = context.embedding;
  record.request_id = context.request->id;
  record.iteration = context.iteration;
  const uint64_t flops = store_.Insert(std::move(record));
  engine.AddAsyncWork(OverheadCategory::kMapUpdate,
                      static_cast<double>(flops) / options_.search_throughput_flops);
}

void FmoePolicy::Reset() {
  store_.Clear();
  matchers_.clear();
  semantic_score_sum_ = 0.0;
  semantic_score_count_ = 0;
  trajectory_score_sum_ = 0.0;
  trajectory_score_count_ = 0;
}

double FmoePolicy::MeanSemanticScore() const {
  if (semantic_score_count_ == 0) {
    return 0.0;
  }
  return semantic_score_sum_ / static_cast<double>(semantic_score_count_);
}

double FmoePolicy::MeanTrajectoryScore() const {
  if (trajectory_score_count_ == 0) {
    return 0.0;
  }
  return trajectory_score_sum_ / static_cast<double>(trajectory_score_count_);
}

}  // namespace fmoe
