#include "src/core/fmoe_policy.h"

#include "src/obs/trace_recorder.h"
#include "src/util/logging.h"

namespace fmoe {

FmoePolicy::FmoePolicy(const ModelConfig& model, int prefetch_distance,
                       const FmoeOptions& options)
    : model_(model),
      prefetch_distance_(prefetch_distance),
      options_(options),
      store_(model, options.store_capacity, prefetch_distance, options.store_dedup,
             options.map_precision, options.map_shards, kSemanticRouterSeed) {
  store_.set_search_threads(options.search_threads);
}

HybridMatcher& FmoePolicy::MatcherForSlot(int slot) {
  FMOE_CHECK(slot >= 0);
  while (matchers_.size() <= static_cast<size_t>(slot)) {
    matchers_.push_back(std::make_unique<HybridMatcher>(&store_, model_, prefetch_distance_,
                                                        options_.matcher));
  }
  return *matchers_[static_cast<size_t>(slot)];
}

FmoePolicy::PrefetchCommand FmoePolicy::BuildCommand(const HybridMatcher& matcher,
                                                     int target_layer,
                                                     int current_layer) const {
  PrefetchCommand command;
  const Guidance guidance = matcher.GuidanceFor(target_layer);
  if (!guidance.valid) {
    return command;
  }
  command.valid = true;
  command.target_layer = target_layer;
  command.stamp_probs = guidance.probs;
  command.candidates = SelectExperts(guidance.probs, guidance.score, model_.top_k,
                                     target_layer, current_layer, options_.prefetcher);
  return command;
}

void FmoePolicy::ApplyCommand(EngineHandle& engine, const PrefetchCommand& command,
                              double low_precision_threshold, double low_precision_fraction,
                              int host_stage_candidates) {
  // Re-stamp the whole layer's distribution on resident experts so eviction priorities track
  // the *current* matched map, not stale history (§4.5).
  for (size_t j = 0; j < command.stamp_probs.size(); ++j) {
    engine.SetCachedProbability(ExpertId{command.target_layer, static_cast<int>(j)},
                                command.stamp_probs[j]);
  }
  for (const PrefetchCandidate& candidate : command.candidates) {
    const ExpertId id{command.target_layer, candidate.expert};
    if (low_precision_threshold > 0.0 && candidate.probability < low_precision_threshold) {
      // Less-critical expert: stream a reduced-precision copy (lossy extension).
      engine.PrefetchAsyncSized(id, candidate.probability, candidate.priority,
                                low_precision_fraction);
    } else {
      engine.PrefetchAsync(id, candidate.probability, candidate.priority);
    }
  }
  if (host_stage_candidates > 0) {
    // Tier-aware staging: the next-best scored experts that did NOT make the prefetch cut are
    // pushed NVMe→host, so a later match or demand miss pays only the host→GPU hop. Repeated
    // top-1 selection over the (small) expert axis; no-op on two-tier engines.
    std::vector<bool> taken(command.stamp_probs.size(), false);
    for (const PrefetchCandidate& candidate : command.candidates) {
      if (candidate.expert >= 0 && static_cast<size_t>(candidate.expert) < taken.size()) {
        taken[static_cast<size_t>(candidate.expert)] = true;
      }
    }
    for (int n = 0; n < host_stage_candidates; ++n) {
      int best = -1;
      for (size_t j = 0; j < command.stamp_probs.size(); ++j) {
        if (taken[j]) {
          continue;
        }
        if (best < 0 || command.stamp_probs[j] > command.stamp_probs[static_cast<size_t>(best)]) {
          best = static_cast<int>(j);
        }
      }
      if (best < 0 || command.stamp_probs[static_cast<size_t>(best)] <= 0.0) {
        break;
      }
      taken[static_cast<size_t>(best)] = true;
      engine.StageToHostAsync(ExpertId{command.target_layer, best},
                              command.stamp_probs[static_cast<size_t>(best)]);
    }
  }
  // Issuing transfers is a handful of queue operations per candidate — async, cheap.
  engine.AddAsyncWork(OverheadCategory::kPrefetchIssue,
                      1.0e-6 * static_cast<double>(command.candidates.size()));
}

void FmoePolicy::PublishMatchWork(EngineHandle& engine, double cost_seconds, uint64_t topic,
                                  std::vector<PrefetchCommand> commands) {
  if (!options_.publish_deferred) {
    // Legacy inline path: charge the async work and apply immediately, bypassing the pub-sub
    // pipeline entirely.
    if (cost_seconds > 0.0) {
      engine.AddAsyncWork(OverheadCategory::kMapMatching, cost_seconds);
    }
    for (const PrefetchCommand& command : commands) {
      ApplyCommand(engine, command, options_.low_precision_threshold,
                   options_.low_precision_fraction, options_.host_stage_candidates);
    }
    return;
  }
  DeferredApply apply;
  if (!commands.empty()) {
    apply = [commands = std::move(commands),
             low_precision_threshold = options_.low_precision_threshold,
             low_precision_fraction = options_.low_precision_fraction,
             host_stage_candidates = options_.host_stage_candidates](EngineHandle& e) {
      for (const PrefetchCommand& command : commands) {
        ApplyCommand(e, command, low_precision_threshold, low_precision_fraction,
                     host_stage_candidates);
      }
    };
  }
  engine.PublishDeferred(OverheadCategory::kMapMatching, PublishMode::kAsync, cost_seconds,
                         topic, std::move(apply));
}

void FmoePolicy::OnIterationStart(EngineHandle& engine, const IterationContext& context) {
  engine.AddOverhead(OverheadCategory::kContextCollection,
                     options_.context_collection_sec_per_layer * model_.num_layers);
  HybridMatcher& matcher = MatcherForSlot(context.batch_slot);
  matcher.BeginIteration(context.embedding);
  const double cost = static_cast<double>(matcher.ConsumeSearchFlops()) /
                      options_.search_throughput_flops;
  if (matcher.semantic_found()) {
    semantic_score_sum_ += matcher.semantic_score();
    ++semantic_score_count_;
  }
  // Semantic-matched guidance covers the layers no trajectory can reach yet (§4.2). The whole
  // first window rides one published job: it is one semantic search's worth of matcher work.
  const int first_window = std::min(prefetch_distance_, model_.num_layers);
  std::vector<PrefetchCommand> commands;
  for (int target = 0; target < first_window; ++target) {
    PrefetchCommand command = BuildCommand(matcher, target, /*current_layer=*/-1);
    if (command.valid) {
      commands.push_back(std::move(command));
    }
  }
  PublishMatchWork(engine, cost, StartTopic(context.batch_slot), std::move(commands));
}

void FmoePolicy::OnGateOutput(EngineHandle& engine, const IterationContext& context, int layer,
                              const std::vector<double>& probs,
                              const std::vector<int>& /*activated*/) {
  HybridMatcher& matcher = MatcherForSlot(context.batch_slot);
  matcher.ObserveLayer(layer, probs);
  const double cost = static_cast<double>(matcher.ConsumeSearchFlops()) /
                      options_.search_throughput_flops;
  if (matcher.trajectory_found()) {
    trajectory_score_sum_ += matcher.trajectory_score();
    ++trajectory_score_count_;
  }
  const int target = layer + prefetch_distance_;
  std::vector<PrefetchCommand> commands;
  uint64_t topic = 0;  // Pure-work job (search that guides no in-range layer): no supersession.
  if (target < model_.num_layers) {
    topic = GateTopic(context.batch_slot, target);
    PrefetchCommand command = BuildCommand(matcher, target, layer);
    if (command.valid) {
      commands.push_back(std::move(command));
    }
  }
  PublishMatchWork(engine, cost, topic, std::move(commands));
}

void FmoePolicy::OnIterationEnd(EngineHandle& engine, const IterationContext& context,
                                const std::vector<std::vector<double>>& layer_probs) {
  if (log_scores_) {
    const HybridMatcher& matcher = MatcherForSlot(context.batch_slot);
    IterationScoreSample sample;
    sample.semantic = matcher.semantic_score();
    sample.semantic_valid = matcher.semantic_found();
    sample.trajectory = matcher.trajectory_score();
    sample.trajectory_valid = matcher.trajectory_found();
    score_log_.push_back(sample);
  }
  StoredIteration record;
  record.map = ExpertMap::FromLayerProbs(layer_probs);
  record.embedding = context.embedding;
  record.request_id = context.request->id;
  record.iteration = context.iteration;
  // The store mutates immediately (matcher state cannot diverge across latency scales); the
  // published job carries the update's modeled cost, occupying the background worker.
  const int target_shard = store_.RouteEmbedding(record.embedding);
  const uint64_t flops = store_.Insert(std::move(record));
  // Per-shard pseudo-threads (§5i): only sharded stores register tracks, so default-run
  // (1-shard) traces keep the exact track table the §5f goldens pin.
  if (TraceRecorder* trace = engine.trace(); trace != nullptr && store_.num_shards() > 1) {
    if (shard_tracks_.empty()) {
      shard_tracks_.reserve(static_cast<size_t>(store_.num_shards()));
      for (int s = 0; s < store_.num_shards(); ++s) {
        shard_tracks_.push_back(trace->RegisterTrack("store/shard" + std::to_string(s)));
      }
    }
    const int track = shard_tracks_[static_cast<size_t>(target_shard)];
    trace->Instant(track, "store-insert", "store", engine.now(),
                   {TraceArg::Uint("generation", store_.generation(target_shard))});
    trace->Counter(track, "store.shard" + std::to_string(target_shard) + ".size",
                   engine.now(), static_cast<double>(store_.shard(target_shard).size()));
  }
  const double cost =
      static_cast<double>(flops) / options_.search_throughput_flops;
  if (!options_.publish_deferred) {
    engine.AddAsyncWork(OverheadCategory::kMapUpdate, cost);
    return;
  }
  engine.PublishDeferred(OverheadCategory::kMapUpdate, PublishMode::kAsync, cost,
                         /*topic=*/0, /*apply=*/nullptr);
}

void FmoePolicy::Reset() {
  store_.Clear();
  matchers_.clear();
  semantic_score_sum_ = 0.0;
  semantic_score_count_ = 0;
  trajectory_score_sum_ = 0.0;
  trajectory_score_count_ = 0;
}

double FmoePolicy::MeanSemanticScore() const {
  if (semantic_score_count_ == 0) {
    return 0.0;
  }
  return semantic_score_sum_ / static_cast<double>(semantic_score_count_);
}

double FmoePolicy::MeanTrajectoryScore() const {
  if (trajectory_score_count_ == 0) {
    return 0.0;
  }
  return trajectory_score_sum_ / static_cast<double>(trajectory_score_count_);
}

}  // namespace fmoe
