#include "src/core/map_matcher.h"

#include "src/util/logging.h"

namespace fmoe {

HybridMatcher::HybridMatcher(const ShardedMapStore* store, const ModelConfig& model,
                             int prefetch_distance, const MatcherOptions& options)
    : store_(store),
      model_(model),
      prefetch_distance_(prefetch_distance),
      options_(options),
      session_(store) {
  FMOE_CHECK(store != nullptr);
  FMOE_CHECK(options.rematch_interval >= 1);
}

void HybridMatcher::BeginIteration(std::span<const double> embedding) {
  session_.Reset();
  observed_layers_ = 0;
  last_match_prefix_ = 0;
  semantic_ = SearchResult{};
  trajectory_ = SearchResult{};
  if (options_.use_semantic) {
    semantic_ = store_->SemanticSearch(embedding);
    pending_flops_ += semantic_.flops;
  }
}

void HybridMatcher::ObserveLayer(int layer, std::span<const double> probs) {
  FMOE_CHECK_MSG(layer == observed_layers_, "layers must be observed in order; got "
                                                << layer << " expected " << observed_layers_);
  ++observed_layers_;
  if (!options_.use_trajectory) {
    return;
  }
  // Every observation extends the session's running dots by one layer (cheap, incremental);
  // the argmax itself is only read on cadence (and at the first opportunity).
  pending_flops_ += session_.ObserveLayer(probs);
  const bool first_match = last_match_prefix_ == 0;
  const bool cadence_due = observed_layers_ - last_match_prefix_ >= options_.rematch_interval;
  if (first_match || cadence_due) {
    const SearchResult result = session_.CurrentBest();
    pending_flops_ += result.flops;
    if (result.found) {
      trajectory_ = result;
    }
    last_match_prefix_ = observed_layers_;
  }
}

Guidance HybridMatcher::GuidanceFor(int target_layer) const {
  Guidance guidance;
  if (target_layer < 0 || target_layer >= model_.num_layers) {
    return guidance;
  }
  const SearchResult* source = nullptr;
  if (target_layer < prefetch_distance_) {
    if (options_.use_semantic && semantic_.found) {
      source = &semantic_;
    }
  } else if (options_.use_trajectory && trajectory_.found) {
    source = &trajectory_;
  } else if (options_.use_semantic && semantic_.found) {
    // Trajectory search unavailable (e.g. empty store early on): fall back to semantic.
    source = &semantic_;
  }
  if (source == nullptr) {
    return guidance;
  }
  const StoredIteration& record = store_->Get(source->shard, source->index);
  const std::span<const double> probs = record.map.Layer(target_layer);
  guidance.valid = true;
  guidance.score = source->score;
  guidance.probs.assign(probs.begin(), probs.end());
  return guidance;
}

uint64_t HybridMatcher::ConsumeSearchFlops() {
  const uint64_t flops = pending_flops_;
  pending_flops_ = 0;
  return flops;
}

}  // namespace fmoe
