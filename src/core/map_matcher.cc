#include "src/core/map_matcher.h"

#include "src/util/logging.h"

namespace fmoe {

HybridMatcher::HybridMatcher(const ExpertMapStore* store, const ModelConfig& model,
                             int prefetch_distance, const MatcherOptions& options)
    : store_(store), model_(model), prefetch_distance_(prefetch_distance), options_(options) {
  FMOE_CHECK(store != nullptr);
  FMOE_CHECK(options.rematch_interval >= 1);
  prefix_.reserve(static_cast<size_t>(model.num_layers) *
                  static_cast<size_t>(model.experts_per_layer));
}

void HybridMatcher::BeginIteration(std::span<const double> embedding) {
  prefix_.clear();
  observed_layers_ = 0;
  last_match_prefix_ = 0;
  semantic_ = SearchResult{};
  trajectory_ = SearchResult{};
  if (options_.use_semantic) {
    semantic_ = store_->SemanticSearch(embedding);
    pending_flops_ += semantic_.flops;
  }
}

void HybridMatcher::ObserveLayer(int layer, std::span<const double> probs) {
  FMOE_CHECK_MSG(layer == observed_layers_, "layers must be observed in order; got "
                                                << layer << " expected " << observed_layers_);
  prefix_.insert(prefix_.end(), probs.begin(), probs.end());
  ++observed_layers_;
  if (!options_.use_trajectory) {
    return;
  }
  // Re-match when the prefix has grown by the cadence (and at the first opportunity).
  const bool first_match = last_match_prefix_ == 0;
  const bool cadence_due = observed_layers_ - last_match_prefix_ >= options_.rematch_interval;
  if (first_match || cadence_due) {
    const SearchResult result = store_->TrajectorySearch(prefix_, observed_layers_);
    pending_flops_ += result.flops;
    if (result.found) {
      trajectory_ = result;
    }
    last_match_prefix_ = observed_layers_;
  }
}

Guidance HybridMatcher::GuidanceFor(int target_layer) const {
  Guidance guidance;
  if (target_layer < 0 || target_layer >= model_.num_layers) {
    return guidance;
  }
  const SearchResult* source = nullptr;
  if (target_layer < prefetch_distance_) {
    if (options_.use_semantic && semantic_.found) {
      source = &semantic_;
    }
  } else if (options_.use_trajectory && trajectory_.found) {
    source = &trajectory_;
  } else if (options_.use_semantic && semantic_.found) {
    // Trajectory search unavailable (e.g. empty store early on): fall back to semantic.
    source = &semantic_;
  }
  if (source == nullptr) {
    return guidance;
  }
  const StoredIteration& record = store_->Get(source->index);
  const std::span<const double> probs = record.map.Layer(target_layer);
  guidance.valid = true;
  guidance.score = source->score;
  guidance.probs.assign(probs.begin(), probs.end());
  return guidance;
}

uint64_t HybridMatcher::ConsumeSearchFlops() {
  const uint64_t flops = pending_flops_;
  pending_flops_ = 0;
  return flops;
}

}  // namespace fmoe
