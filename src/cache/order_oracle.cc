#include "src/cache/order_oracle.h"

#include "src/util/logging.h"

namespace fmoe {

void IterationOrderOracle::EnsureSlot(uint32_t slot) {
  if (slot >= next_.size()) {
    const size_t n = static_cast<size_t>(slot) + 1;
    next_.resize(n, kNil);
    prev_.resize(n, kNil);
    labels_.resize(n, 0);
    key_of_.resize(n, 0);
  }
}

IterationOrderOracle::InsertResult IterationOrderOracle::Insert(uint64_t key, uint32_t slot) {
  EnsureSlot(slot);
  key_of_[slot] = key;

  // Predict the new node's successor in iteration order before touching the map: libstdc++
  // places the node at the head of its bucket (before the current bucket head), or at the
  // global head when the bucket is empty.
  const size_t old_bucket_count = map_.bucket_count();
  uint32_t succ = kNil;
  bool at_global_head = map_.empty();
  if (!map_.empty()) {
    const size_t b = map_.bucket(key);
    auto lit = map_.cbegin(b);
    if (lit == map_.cend(b)) {
      at_global_head = true;
      succ = map_.cbegin()->second;
    } else {
      succ = lit->second;
    }
  }

  const auto [it, inserted] = map_.emplace(key, slot);
  FMOE_CHECK_MSG(inserted, "order oracle: duplicate key " << key);

  // Verify the prediction; on a rehash (bucket count changed) or any mismatch, rebuild the
  // mirror from the real map — exact on any implementation.
  bool predicted = map_.bucket_count() == old_bucket_count;
  if (predicted) {
    const size_t b = map_.bucket(key);
    auto lit = map_.cbegin(b);
    predicted = lit != map_.cend(b) && lit->first == key;
    if (predicted && at_global_head) {
      predicted = map_.cbegin()->first == key;
    }
  }
  if (!predicted) {
    RebuildFromMap();
    return InsertResult{labels_[slot], true};
  }
  const bool relabeled = LinkBefore(slot, succ);
  return InsertResult{labels_[slot], relabeled};
}

void IterationOrderOracle::Erase(uint64_t key, uint32_t slot) {
  const auto it = map_.find(key);
  FMOE_CHECK_MSG(it != map_.end() && it->second == slot, "order oracle: bad erase " << key);
  map_.erase(it);  // Erase never moves other nodes, so the mirror stays valid.
  Unlink(slot);
}

bool IterationOrderOracle::LinkBefore(uint32_t slot, uint32_t succ) {
  if (succ == kNil) {  // Append at the tail (only reachable when the list is empty).
    prev_[slot] = tail_;
    next_[slot] = kNil;
    if (tail_ != kNil) {
      next_[tail_] = slot;
    } else {
      head_ = slot;
    }
    tail_ = slot;
    labels_[slot] = tail_ == head_ ? kLabelBase : labels_[prev_[slot]] + kLabelGap;
    if (tail_ != head_ && labels_[slot] <= labels_[prev_[slot]]) {
      Relabel();
      return true;
    }
    return false;
  }
  const uint32_t pred = prev_[succ];
  prev_[slot] = pred;
  next_[slot] = succ;
  prev_[succ] = slot;
  if (pred != kNil) {
    next_[pred] = slot;
  } else {
    head_ = slot;
  }
  if (pred == kNil) {  // New global head: extend the label range downward.
    if (labels_[succ] < kLabelGap) {
      Relabel();
      return true;
    }
    labels_[slot] = labels_[succ] - kLabelGap;
    return false;
  }
  const uint64_t gap = labels_[succ] - labels_[pred];
  if (gap < 2) {  // Midpoint exhausted: renumber everything.
    Relabel();
    return true;
  }
  labels_[slot] = labels_[pred] + gap / 2;
  return false;
}

void IterationOrderOracle::Unlink(uint32_t slot) {
  const uint32_t p = prev_[slot];
  const uint32_t n = next_[slot];
  if (p != kNil) {
    next_[p] = n;
  } else {
    head_ = n;
  }
  if (n != kNil) {
    prev_[n] = p;
  } else {
    tail_ = p;
  }
  next_[slot] = kNil;
  prev_[slot] = kNil;
}

void IterationOrderOracle::Relabel() {
  ++stats_.relabels;
  uint64_t label = kLabelBase;
  for (uint32_t s = head_; s != kNil; s = next_[s]) {
    labels_[s] = label;
    label += kLabelGap;
  }
}

void IterationOrderOracle::RebuildFromMap() {
  ++stats_.rebuilds;
  head_ = kNil;
  tail_ = kNil;
  uint64_t label = kLabelBase;
  for (const auto& [key, slot] : map_) {
    prev_[slot] = tail_;
    next_[slot] = kNil;
    if (tail_ != kNil) {
      next_[tail_] = slot;
    } else {
      head_ = slot;
    }
    tail_ = slot;
    labels_[slot] = label;
    label += kLabelGap;
  }
}

void IterationOrderOracle::AppendKeysInOrder(std::vector<uint64_t>* out) const {
  for (uint32_t s = head_; s != kNil; s = next_[s]) {
    out->push_back(key_of_[s]);
  }
}

}  // namespace fmoe
