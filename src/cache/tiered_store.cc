#include "src/cache/tiered_store.h"

#include <algorithm>
#include <limits>

#include "src/obs/trace_recorder.h"
#include "src/util/logging.h"

namespace fmoe {

TieredExpertStore::TieredExpertStore(uint64_t gpu_capacity_bytes, const EvictionPolicy* gpu_policy,
                                     const TierConfig& config)
    : config_(config),
      host_policy_(MakeEvictionPolicy(config.host_policy)),
      gpu_(gpu_capacity_bytes, gpu_policy),
      host_(config.enabled() ? config.host_capacity_bytes : 0, host_policy_.get()),
      nvme_link_(config.nvme_link) {
  nvme_link_.set_completion_callback(
      [this](uint64_t tag, double completion) { OnNvmeScheduled(tag, completion); });
}

void TieredExpertStore::set_trace(TraceRecorder* trace, int host_track, int nvme_track) {
  trace_ = trace;
  host_track_ = host_track;
  nvme_track_ = nvme_track;
  nvme_link_.set_trace(trace, nvme_track);
}

double TieredExpertStore::HostAvailableAt(uint64_t key, double now) const {
  const ConstEntryRef entry = host_.Find(key);
  if (!entry || entry.prefetch_pending()) {
    return now;
  }
  return std::max(now, entry.ready_at());
}

double TieredExpertStore::EnsureHostSide(uint64_t key, uint64_t bytes, double now, Tier* source) {
  nvme_link_.Tick(now);  // Land any staging that has started before routing.
  EntryRef entry = host_.Find(key);
  if (entry && !entry.prefetch_pending()) {
    // Host hit: the copy is committed (possibly still in flight from an earlier staging; the
    // GPU hop then starts when it lands).
    ++stats_.host_hits;
    *source = Tier::kHost;
    const double available = std::max(now, entry.ready_at());
    host_.Touch(key, now);
    TraceMove("host-hit", key, bytes, now);
    return available;
  }
  // Any still-queued staging is promoted: cancel the queued NVMe prefetch and jump the NVMe
  // queue with a demand load (mirroring the GPU link's queued-promoted discipline).
  const auto stage_it = stage_tag_by_key_.find(key);
  if (stage_it != stage_tag_by_key_.end()) {
    const uint64_t stage_tag = stage_it->second;
    nvme_link_.CancelQueuedPrefetch(stage_tag);
    EraseStage(stage_tag, key);
    ++stats_.stage_promotions;
  }
  const double ready = nvme_link_.DemandLoad(now, bytes);
  ++stats_.nvme_hits;
  *source = Tier::kNvme;
  if (entry) {
    // Host-backed staging entry adopts the demand completion.
    entry.set_ready_at(ready);
    entry.set_prefetch_pending(false);
    entry.set_transfer_tag(0);
    host_.Unpin(key);
    host_.Touch(key, now);
  } else {
    // Keep a host pool copy of the demand-staged bytes when it fits (the transfer streams
    // through a transient bounce buffer either way).
    CacheEntry fresh;
    fresh.key = key;
    fresh.bytes = bytes;
    fresh.ready_at = ready;
    fresh.last_access = now;
    fresh.prefetch_pending = false;
    host_victims_scratch_.clear();
    if (host_.Insert(fresh, now, &host_victims_scratch_)) {
      NoteHostSpills(now);
      TraceHostOccupancy(now);
    }
  }
  TraceMove("nvme-demand-stage", key, bytes, now);
  return ready;
}

double TieredExpertStore::DirectDemand(uint64_t key, uint64_t bytes, double now) {
  nvme_link_.Tick(now);
  ++stats_.nvme_hits;
  ++stats_.direct_loads;
  TraceMove("nvme-direct-demand", key, bytes, now);
  return nvme_link_.DemandLoad(now, bytes);
}

TieredExpertStore::FillRoute TieredExpertStore::PlanGpuFill(uint64_t key, uint64_t bytes,
                                                            double now, double probability,
                                                            double* earliest,
                                                            uint64_t* stage_tag) {
  nvme_link_.Tick(now);
  EntryRef entry = host_.Find(key);
  if (entry && !entry.prefetch_pending()) {
    ++stats_.gpu_fills_from_host;
    *earliest = std::max(now, entry.ready_at());
    host_.Touch(key, now);
    return FillRoute::kFromHost;
  }
  const auto stage_it = stage_tag_by_key_.find(key);
  if (stage_it != stage_tag_by_key_.end()) {
    // Chain onto the staging already in flight for this key.
    ++stats_.gpu_fills_chained;
    *stage_tag = stage_it->second;
    return FillRoute::kChained;
  }
  if (config_.allow_direct_nvme_gpu) {
    ++stats_.direct_loads;
    return FillRoute::kDirect;
  }
  *stage_tag = StageInternal(key, bytes, now, probability, /*require_host_backed=*/false);
  ++stats_.gpu_fills_chained;
  return FillRoute::kChained;
}

uint64_t TieredExpertStore::StageToHost(uint64_t key, uint64_t bytes, double now,
                                        double probability) {
  if (!enabled() || config_.host_capacity_bytes == 0) {
    return 0;
  }
  nvme_link_.Tick(now);
  if (host_.Contains(key)) {
    host_.SetProbability(key, probability);
    return 0;
  }
  if (stage_tag_by_key_.contains(key)) {
    // A transient (bounce-buffer) staging for this key is already in flight; issuing a
    // second one would fork the per-key stage bookkeeping.
    return 0;
  }
  return StageInternal(key, bytes, now, probability, /*require_host_backed=*/true);
}

uint64_t TieredExpertStore::StageInternal(uint64_t key, uint64_t bytes, double now,
                                          double probability, bool require_host_backed) {
  CacheEntry entry;
  entry.key = key;
  entry.bytes = bytes;
  entry.ready_at = std::numeric_limits<double>::infinity();
  entry.last_access = now;
  entry.probability = probability;
  entry.prefetch_pending = true;
  const uint64_t tag = next_stage_tag_++;
  entry.transfer_tag = tag;
  host_victims_scratch_.clear();
  const bool host_backed = host_.Insert(entry, now, &host_victims_scratch_);
  if (host_backed) {
    NoteHostSpills(now);
    // Pinned until the staging transfer is scheduled: a queued staging entry can never be
    // evicted out from under its chain.
    host_.Pin(key);
    TraceHostOccupancy(now);
  } else if (require_host_backed) {
    return 0;
  }
  stage_by_tag_.emplace(tag, StageInfo{key, host_backed});
  stage_tag_by_key_.emplace(key, tag);
  ++stats_.stages_issued;
  nvme_link_.EnqueuePrefetch(now, tag, bytes);
  TraceMove(host_backed ? "stage-issue" : "stage-issue-transient", key, bytes, now);
  return tag;
}

void TieredExpertStore::OnNvmeScheduled(uint64_t tag, double completion) {
  const auto it = stage_by_tag_.find(tag);
  if (it == stage_by_tag_.end()) {
    // Not a staging tag: an engine-owned direct NVMe→GPU transfer.
    if (direct_hook_) {
      direct_hook_(tag, completion);
    }
    return;
  }
  const StageInfo info = it->second;
  EraseStage(tag, info.key);
  if (info.host_backed) {
    EntryRef entry = host_.Find(info.key);
    if (entry && entry.transfer_tag() == tag) {
      entry.set_ready_at(completion);
      entry.set_prefetch_pending(false);
      entry.set_transfer_tag(0);
      host_.Unpin(info.key);
    }
  }
  ++stats_.stages_landed;
  if (stage_hook_) {
    stage_hook_(tag, info.key, completion);
  }
}

void TieredExpertStore::EraseStage(uint64_t tag, uint64_t key) {
  stage_by_tag_.erase(tag);
  const auto it = stage_tag_by_key_.find(key);
  if (it != stage_tag_by_key_.end() && it->second == tag) {
    stage_tag_by_key_.erase(it);
  }
}

void TieredExpertStore::DemoteGpuVictim(const CacheEntry& victim, double now) {
  if (!enabled()) {
    return;
  }
  if (config_.host_capacity_bytes == 0 || host_.Contains(victim.key)) {
    // No host tier (two-tier GPU↔NVMe) or a host copy already exists: the victim's data is
    // simply dropped — NVMe holds the master copy.
    if (!host_.Contains(victim.key)) {
      ++stats_.demotions_to_nvme;
      TraceMove("evicted-to-nvme", victim.key, victim.bytes, now);
    } else {
      ++stats_.demotions_to_host;
      TraceMove("evicted-to-host", victim.key, victim.bytes, now);
    }
    return;
  }
  CacheEntry entry = victim;
  entry.ready_at = now;  // Device→host writeback rides the free full-duplex reverse lane.
  entry.last_access = now;
  entry.prefetch_pending = false;
  entry.transfer_tag = 0;
  entry.pin_count = 0;
  host_victims_scratch_.clear();
  if (host_.Insert(entry, now, &host_victims_scratch_)) {
    NoteHostSpills(now);
    ++stats_.demotions_to_host;
    TraceMove("evicted-to-host", victim.key, victim.bytes, now);
    TraceHostOccupancy(now);
  } else {
    ++stats_.demotions_to_nvme;
    TraceMove("evicted-to-nvme", victim.key, victim.bytes, now);
  }
}

void TieredExpertStore::NoteHostSpills(double now) {
  for (const CacheEntry& victim : host_victims_scratch_) {
    ++stats_.host_spills;
    TraceMove("spill-to-nvme", victim.key, victim.bytes, now);
  }
  host_victims_scratch_.clear();
}

void TieredExpertStore::TraceMove(const char* name, uint64_t key, uint64_t bytes, double now) {
  if (trace_) {
    trace_->Instant(host_track_, name, "tier", now,
                    {TraceArg::Uint("key", key), TraceArg::Uint("bytes", bytes)});
  }
}

void TieredExpertStore::TraceHostOccupancy(double now) {
  if (trace_) {
    trace_->Counter(host_track_, "host.used_bytes", now,
                    static_cast<double>(host_.used_bytes()));
    trace_->Counter(host_track_, "host.entries", now, static_cast<double>(host_.size()));
  }
}

bool TieredExpertStore::BookkeepingConsistent() const {
  if (stage_by_tag_.size() != stage_tag_by_key_.size()) {
    return false;
  }
  for (const auto& [tag, info] : stage_by_tag_) {
    const auto key_it = stage_tag_by_key_.find(info.key);
    if (key_it == stage_tag_by_key_.end() || key_it->second != tag) {
      return false;
    }
    const ConstEntryRef entry = host_.Find(info.key);
    if (info.host_backed) {
      // A host-backed staging entry must still be pending on this tag and pinned.
      if (!entry || !entry.prefetch_pending() || entry.transfer_tag() != tag ||
          entry.pin_count() == 0) {
        return false;
      }
    } else if (entry) {
      // Transient stagings have no host entry by definition.
      return false;
    }
  }
  if (host_.used_bytes() > host_.capacity_bytes()) {
    return false;
  }
  return true;
}

}  // namespace fmoe
