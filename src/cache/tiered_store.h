// Three-tier expert storage: GPU cache ↔ capacity-bounded host-RAM pool ↔ NVMe.
//
// The paper treats offloaded experts as living in one flat host pool behind the PCIe link.
// This store generalizes that world to a hierarchy: the GPU tier stays the existing slot-based
// ExpertCache (bit-for-bit untouched), the host tier is a second ExpertCache with its own
// eviction policy holding staged/demoted expert copies, and NVMe is the infinite backing tier
// where every expert's master copy always lives. Each inter-tier hop runs on its own link:
// host↔GPU on the per-device PCIe link the engine already owns, NVMe↔host (or NVMe→GPU on the
// explicit direct path) on the store's NVMe link.
//
// Movement rules (DESIGN.md §5h):
//   * promote  NVMe→host: speculative staging on map-store candidate scoring (StageToHost) or
//     as the upstream hop of a chained GPU fill (PlanGpuFill → kChained).
//   * promote  host→GPU: the engine's normal prefetch/demand machinery; the store only tells
//     it where the bytes are and from when they are available (EnsureHostSide / PlanGpuFill).
//   * demote   GPU→host: eviction victims with real resident data re-home in the host pool
//     (DemoteGpuVictim). The device→host writeback direction is modeled free: the PCIe link
//     models the host→device direction and the reverse lane of the full-duplex link is idle.
//   * spill    host→NVMe: host-pool evictions under pressure simply drop the copy — NVMe
//     always holds the master, so a clean spill costs no transfer.
//
// With `nvme_backing == false` (the default TierConfig) the store is disabled: the engine
// replays the legacy two-tier GPU↔host path bit-identically and none of this machinery runs.
#ifndef FMOE_SRC_CACHE_TIERED_STORE_H_
#define FMOE_SRC_CACHE_TIERED_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/eviction_policy.h"
#include "src/cache/expert_cache.h"
#include "src/memsim/link.h"

namespace fmoe {

class TraceRecorder;

struct TierConfig {
  // Master switch: experts' off-GPU home is NVMe instead of an infinite host pool. False
  // replays the legacy two-tier path bit-identically regardless of the other knobs.
  bool nvme_backing = false;
  // Host-RAM staging pool budget. 0 with nvme_backing gives a two-tier GPU↔NVMe hierarchy
  // (the bench baseline); > 0 inserts the host tier in between.
  uint64_t host_capacity_bytes = 0;
  // NVMe link model (PCIe 4.0 x4 consumer drive ballpark; ~9× slower than the GPU link).
  LinkConfig nvme_link{3.5e9, 80e-6};
  // Explicitly configured NVMe→GPU teleport path. Off by default: without it every byte
  // reaching the GPU must pass through host staging (the tier property tests pin this).
  bool allow_direct_nvme_gpu = false;
  // Eviction policy of the host pool (LRU / LFU / fMoE-PriorityLFU).
  std::string host_policy = "LRU";
  // KV-cache pressure: bytes of GPU memory reserved per in-flight token, shrinking the
  // effective GPU expert budget as sequence length grows (paper Table 1).
  double kv_bytes_per_token = 0.0;

  bool enabled() const { return nvme_backing; }
};

struct TierStats {
  uint64_t host_hits = 0;            // Demand fills served from a host-side copy.
  uint64_t nvme_hits = 0;            // Demand fills that had to read NVMe.
  uint64_t gpu_fills_from_host = 0;  // Prefetch hops sourced from a ready host copy.
  uint64_t gpu_fills_chained = 0;    // Prefetch hops chained behind NVMe→host staging.
  uint64_t direct_loads = 0;         // Transfers on the explicit NVMe→GPU direct path.
  uint64_t stages_issued = 0;        // NVMe→host staging transfers enqueued.
  uint64_t stages_landed = 0;        // Stagings whose NVMe transfer started (completion known).
  uint64_t stage_promotions = 0;     // Queued stagings promoted to NVMe demand loads.
  uint64_t demotions_to_host = 0;    // GPU victims re-homed in the host pool.
  uint64_t demotions_to_nvme = 0;    // GPU victims dropped straight to NVMe (no host room).
  uint64_t host_spills = 0;          // Host victims spilled to NVMe under pressure.
};

class TieredExpertStore {
 public:
  enum class Tier { kHost, kNvme };
  enum class FillRoute {
    kFromHost,  // Host copy available: enqueue the GPU hop with the returned earliest start.
    kChained,   // NVMe→host staging in flight/queued: enqueue the GPU hop when it lands.
    kDirect,    // Explicit direct path: run the transfer on the NVMe link itself.
  };

  // `on_stage_scheduled(stage_tag, key, completion)` fires when an NVMe→host staging transfer
  // starts (its completion instant becomes known) — the engine uses it to launch chained
  // host→GPU hops. `on_direct_scheduled(tag, completion)` forwards NVMe-link completions for
  // tags the store does not own (the engine's direct NVMe→GPU transfers).
  using StageScheduledHook = std::function<void(uint64_t stage_tag, uint64_t key, double completion)>;
  using TransferScheduledHook = std::function<void(uint64_t tag, double completion)>;

  TieredExpertStore(uint64_t gpu_capacity_bytes, const EvictionPolicy* gpu_policy,
                    const TierConfig& config);

  ExpertCache& gpu() { return gpu_; }
  const ExpertCache& gpu() const { return gpu_; }
  const ExpertCache& host() const { return host_; }
  PcieLink& nvme_link() { return nvme_link_; }
  const PcieLink& nvme_link() const { return nvme_link_; }
  bool enabled() const { return config_.enabled(); }
  const TierConfig& config() const { return config_; }
  const TierStats& stats() const { return stats_; }
  size_t pending_stage_count() const { return stage_by_tag_.size(); }

  void set_stage_scheduled_hook(StageScheduledHook hook) { stage_hook_ = std::move(hook); }
  void set_direct_scheduled_hook(TransferScheduledHook hook) { direct_hook_ = std::move(hook); }

  // Attaches a trace recorder (pure observer). Tier movements become instants on
  // `host_track`; the NVMe link's transfers go on `nvme_track`. The host ExpertCache itself
  // is deliberately NOT traced: its evictions are spills of copies whose GPU fate is already
  // tracked, and feeding them into the recorder's evicted-before-use machinery would corrupt
  // demand-stall attribution.
  void set_trace(TraceRecorder* trace, int host_track, int nvme_track);

  // --- Residency queries. ---
  bool HostResident(uint64_t key) const { return host_.Contains(key); }
  // Earliest instant a committed host copy of `key` can feed a GPU hop: max(now, ready_at),
  // or `now` when no such copy exists (callers use this for hops already enqueued).
  double HostAvailableAt(uint64_t key, double now) const;

  // --- Demand path. ---
  // Makes `key`'s bytes available host-side and returns the earliest instant the host→GPU
  // hop may start. Ready host copy: returns immediately (host hit). Queued staging: promoted
  // to an NVMe demand load. Absent: NVMe demand load through a host bounce buffer (a host
  // pool entry is kept when it fits). `*source` reports which tier served the bytes.
  double EnsureHostSide(uint64_t key, uint64_t bytes, double now, Tier* source);

  // Demand load over the explicit NVMe→GPU direct path; returns the completion time.
  double DirectDemand(uint64_t key, uint64_t bytes, double now);

  // --- Prefetch path. ---
  // Plans the source side of a GPU prefetch issued at `now`. kFromHost sets `*earliest`;
  // kChained sets `*stage_tag` (an NVMe→host staging the caller should chain on — newly
  // issued here if none was in flight). kDirect asks the caller to run the transfer on the
  // NVMe link. Never fails: when the host pool cannot hold the staging copy the transfer
  // still runs through a transient host bounce buffer.
  FillRoute PlanGpuFill(uint64_t key, uint64_t bytes, double now, double probability,
                        double* earliest, uint64_t* stage_tag);

  // Speculative NVMe→host staging (map-store candidate scoring, no GPU hop attached).
  // Returns the stage tag, or 0 when nothing was issued (already host-side, no host pool, or
  // the pool cannot take the copy).
  uint64_t StageToHost(uint64_t key, uint64_t bytes, double now, double probability);

  // --- Demotion. ---
  // Re-homes a GPU eviction victim carrying real resident data (caller filters out pending
  // prefetch victims, which have no bytes to save).
  void DemoteGpuVictim(const CacheEntry& victim, double now);

  // Ages host-pool hit frequencies (mirrors the engine's per-iteration GPU cache decay).
  void DecayHostFrequencies(double factor) { host_.DecayFrequencies(factor); }

  // Advances the NVMe link, landing staged transfers and firing chain hooks.
  void Tick(double now) { nvme_link_.Tick(now); }

  // Cross-checks stage bookkeeping against host-pool state (fuzz/property tests).
  bool BookkeepingConsistent() const;

 private:
  struct StageInfo {
    uint64_t key = 0;
    bool host_backed = false;  // False: transient bounce buffer, no host pool entry.
  };

  uint64_t StageInternal(uint64_t key, uint64_t bytes, double now, double probability,
                         bool require_host_backed);
  void OnNvmeScheduled(uint64_t tag, double completion);
  void EraseStage(uint64_t tag, uint64_t key);
  void NoteHostSpills(double now);
  void TraceMove(const char* name, uint64_t key, uint64_t bytes, double now);
  void TraceHostOccupancy(double now);

  TierConfig config_;
  std::unique_ptr<EvictionPolicy> host_policy_;
  ExpertCache gpu_;
  ExpertCache host_;
  PcieLink nvme_link_;
  TierStats stats_;
  StageScheduledHook stage_hook_;
  TransferScheduledHook direct_hook_;
  TraceRecorder* trace_ = nullptr;  // Not owned; null = tracing disabled.
  int host_track_ = 0;
  int nvme_track_ = 0;

  uint64_t next_stage_tag_ = 1;
  std::unordered_map<uint64_t, StageInfo> stage_by_tag_;
  std::unordered_map<uint64_t, uint64_t> stage_tag_by_key_;
  std::vector<CacheEntry> host_victims_scratch_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_CACHE_TIERED_STORE_H_
