#include "src/cache/expert_cache.h"

#include <algorithm>

#include "src/obs/control_signals.h"
#include "src/obs/trace_recorder.h"
#include "src/util/logging.h"

namespace fmoe {
namespace {

// splitmix64 finalizer: expert keys are small dense integers, so the open-addressed table
// needs real avalanche to avoid probe clustering.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ExpertCache::ExpertCache(uint64_t capacity_bytes, const EvictionPolicy* policy)
    : capacity_bytes_(capacity_bytes), policy_(policy) {
  FMOE_CHECK(policy != nullptr);
  uses_frequency_ = policy->uses_frequency();
  uses_probability_ = policy->uses_probability();
  table_keys_.assign(16, 0);
  table_slots_.assign(16, kNilSlot);
  table_mask_ = 15;
}

// --- Open-addressed key -> slot table. ---

uint32_t ExpertCache::LookupSlot(uint64_t key) const {
  size_t i = MixKey(key) & table_mask_;
  while (table_slots_[i] != kNilSlot) {
    if (table_keys_[i] == key) {
      return table_slots_[i];
    }
    i = (i + 1) & table_mask_;
  }
  return kNilSlot;
}

void ExpertCache::TableInsert(uint64_t key, uint32_t slot) {
  if ((table_used_ + 1) * 10 >= table_keys_.size() * 7) {
    TableGrow();
  }
  size_t i = MixKey(key) & table_mask_;
  while (table_slots_[i] != kNilSlot) {
    i = (i + 1) & table_mask_;
  }
  table_keys_[i] = key;
  table_slots_[i] = slot;
  ++table_used_;
}

void ExpertCache::TableErase(uint64_t key) {
  size_t i = MixKey(key) & table_mask_;
  while (table_slots_[i] == kNilSlot || table_keys_[i] != key) {
    FMOE_CHECK_MSG(table_slots_[i] != kNilSlot, "table erase of absent key " << key);
    i = (i + 1) & table_mask_;
  }
  // Backward-shift deletion keeps probe chains contiguous without tombstones.
  size_t hole = i;
  size_t j = (i + 1) & table_mask_;
  while (table_slots_[j] != kNilSlot) {
    const size_t home = MixKey(table_keys_[j]) & table_mask_;
    // Move j into the hole unless j's probe path starts after the hole.
    const bool reachable = ((j - home) & table_mask_) >= ((j - hole) & table_mask_);
    if (reachable) {
      table_keys_[hole] = table_keys_[j];
      table_slots_[hole] = table_slots_[j];
      hole = j;
    }
    j = (j + 1) & table_mask_;
  }
  table_slots_[hole] = kNilSlot;
  --table_used_;
}

void ExpertCache::TableGrow() {
  const size_t new_size = table_keys_.size() * 2;
  std::vector<uint64_t> old_keys = std::move(table_keys_);
  std::vector<uint32_t> old_slots = std::move(table_slots_);
  table_keys_.assign(new_size, 0);
  table_slots_.assign(new_size, kNilSlot);
  table_mask_ = new_size - 1;
  for (size_t i = 0; i < old_slots.size(); ++i) {
    if (old_slots[i] == kNilSlot) {
      continue;
    }
    size_t j = MixKey(old_keys[i]) & table_mask_;
    while (table_slots_[j] != kNilSlot) {
      j = (j + 1) & table_mask_;
    }
    table_keys_[j] = old_keys[i];
    table_slots_[j] = old_slots[i];
  }
}

// --- Lazy decay. ---

double ExpertCache::MaterializedFrequency(uint32_t slot) const {
  double f = freq_[slot];
  const uint64_t e = epoch_[slot];
  if (f == 0.0 || e == decay_epoch_) {
    return f;  // 0 * factor == 0 exactly, at every step of the fold.
  }
  for (size_t i = static_cast<size_t>(e - base_epoch_); i < epoch_factors_.size(); ++i) {
    f *= epoch_factors_[i];
  }
  return f;
}

void ExpertCache::MaterializeSlot(uint32_t slot) {
  // Storing a materialized value is always safe: the fold applies the logged factors in the
  // order an eager sweep would have, so the stored double is bitwise what the seed
  // implementation would hold.
  freq_[slot] = MaterializedFrequency(slot);
  epoch_[slot] = decay_epoch_;
}

CacheEntry ExpertCache::MaterializedEntry(uint32_t slot) const {
  CacheEntry entry;
  entry.key = key_[slot];
  entry.bytes = bytes_[slot];
  entry.ready_at = ready_at_[slot];
  entry.last_access = last_access_[slot];
  entry.frequency = MaterializedFrequency(slot);
  entry.probability = prob_[slot];
  entry.pin_count = pin_count_[slot];
  entry.prefetch_pending = prefetch_pending_[slot] != 0;
  entry.transfer_tag = transfer_tag_[slot];
  entry.reduced_precision = reduced_precision_[slot] != 0;
  return entry;
}

void ExpertCache::Rebase(double factor) {
  ++index_stats_.rebases;
  for (uint32_t s = 0; s < occupied_flag_.size(); ++s) {
    if (occupied_flag_[s]) {
      MaterializeSlot(s);
    }
  }
  epoch_factors_.clear();
  base_epoch_ = decay_epoch_;
  decay_product_ = 1.0;
  inv_decay_ = 1.0;
  sched_factor_ = factor;
  crossings_.clear();
  RebuildHeaps();
  // Heap rebuild deliberately skips crossing scheduling (schedules normally survive a
  // compaction); after a rebase the cleared schedule must be rebuilt for every active entry,
  // pinned ones included — a pin does not pause frequency decay.
  if (uses_frequency_) {
    for (uint32_t s = 0; s < occupied_flag_.size(); ++s) {
      if (occupied_flag_[s] && freq_[s] > kEvictionFrequencyFloor) {
        ScheduleCrossing(s);
      }
    }
  }
}

// --- Eviction index. ---

void ExpertCache::ScheduleCrossing(uint32_t slot) {
  // Predict the epoch at which this active entry's frequency decays to the plateau, by
  // replaying the exact fold the future decays will perform. Valid only while every future
  // decay uses sched_factor_; a different factor triggers a rebase that reschedules.
  if (!uses_frequency_ || sched_factor_ <= 0.0 || sched_factor_ >= 1.0) {
    return;
  }
  double f = freq_[slot];  // Materialized by the caller.
  if (f <= kEvictionFrequencyFloor) {
    return;
  }
  uint64_t e = decay_epoch_;
  const uint64_t horizon = base_epoch_ + kRebaseEpochLimit;
  while (f > kEvictionFrequencyFloor && e < horizon) {
    f *= sched_factor_;
    ++e;
  }
  if (f <= kEvictionFrequencyFloor) {
    crossings_[e].emplace_back(slot, freq_gen_[slot]);
  }
  // Else: the entry stays active past the rebase horizon; the rebase reschedules it.
}

void ExpertCache::PushHeapNode(uint32_t slot) {
  MaterializeSlot(slot);
  const CacheEntry view = MaterializedEntry(slot);
  const EvictionIndexKey key = policy_->IndexKey(view, inv_decay_);
  std::vector<HeapNode>& heap = key.frozen ? frozen_heap_ : active_heap_;
  heap.push_back(HeapNode{key.primary, oracle_.label(slot), slot, gen_[slot]});
  std::push_heap(heap.begin(), heap.end(), NodeAfter{});
  ++index_stats_.heap_pushes;
  if (frozen_heap_.size() + active_heap_.size() > 8 * occupied_ + 64) {
    RebuildHeaps();  // Compaction: drop accumulated stale nodes.
  }
}

void ExpertCache::RebuildHeaps() {
  ++index_stats_.heap_rebuilds;
  frozen_heap_.clear();
  active_heap_.clear();
  for (uint32_t s = 0; s < occupied_flag_.size(); ++s) {
    if (!occupied_flag_[s] || pin_count_[s] > 0) {
      continue;
    }
    MaterializeSlot(s);
    const EvictionIndexKey key = policy_->IndexKey(MaterializedEntry(s), inv_decay_);
    std::vector<HeapNode>& heap = key.frozen ? frozen_heap_ : active_heap_;
    heap.push_back(HeapNode{key.primary, oracle_.label(s), s, gen_[s]});
  }
  std::make_heap(frozen_heap_.begin(), frozen_heap_.end(), NodeAfter{});
  std::make_heap(active_heap_.begin(), active_heap_.end(), NodeAfter{});
}

double ExpertCache::ExactScore(uint32_t slot, double now) {
  MaterializeSlot(slot);
  return policy_->EvictionScore(MaterializedEntry(slot), now);
}

bool ExpertCache::BestCandidate(std::vector<HeapNode>& heap, double now, Candidate* out) {
  // Pop stale nodes (generation mismatch) until a live top emerges.
  const auto clean_top = [&] {
    while (!heap.empty() && heap.front().gen != gen_[heap.front().slot]) {
      std::pop_heap(heap.begin(), heap.end(), NodeAfter{});
      heap.pop_back();
      ++index_stats_.heap_pops;
    }
  };
  clean_top();
  if (heap.empty()) {
    return false;
  }
  pick_scratch_.clear();
  std::pop_heap(heap.begin(), heap.end(), NodeAfter{});
  HeapNode node = heap.back();
  heap.pop_back();
  ++index_stats_.heap_pops;
  pick_scratch_.push_back(node);
  Candidate best{node.slot, node.label, ExactScore(node.slot, now)};
  double level_primary = node.primary;
  // A lower (primary, label) means a better victim, so the top is the winner — except when
  // floating-point rounding lands entries at *different* primaries but *equal* (or even
  // inverted) exact scores, where the seed scan's tie-break is the iteration-order label
  // across all of them. Walk further primary levels while their exact score still competes.
  // Nodes sharing the current primary cannot win (same score function of the primary for
  // frozen keys, larger label), so a repeated primary terminates the walk, which keeps this
  // O(log n) even when the whole heap sits on one plateau primary.
  while (true) {
    clean_top();
    if (heap.empty() || heap.front().primary == level_primary) {
      break;
    }
    const double score = ExactScore(heap.front().slot, now);
    if (score > best.score) {
      // Rounding inverted primary order vs exact scores; the eager scan maximizes the exact
      // score, so the deeper node wins outright.
      best = Candidate{heap.front().slot, heap.front().label, score};
    } else if (score == best.score) {
      if (heap.front().label < best.label) {
        best = Candidate{heap.front().slot, heap.front().label, score};
      }
    } else {
      break;  // Strictly worse level; deeper ones are worse still.
    }
    std::pop_heap(heap.begin(), heap.end(), NodeAfter{});
    node = heap.back();
    heap.pop_back();
    ++index_stats_.heap_pops;
    pick_scratch_.push_back(node);
    level_primary = node.primary;
  }
  // Everything popped stays live (a chosen victim's nodes die via its generation bump).
  for (const HeapNode& n : pick_scratch_) {
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(), NodeAfter{});
  }
  *out = best;
  return true;
}

bool ExpertCache::PickVictim(double now, uint64_t* victim) {
  ++index_stats_.victim_picks;
  Candidate frozen;
  Candidate active;
  const bool have_frozen = BestCandidate(frozen_heap_, now, &frozen);
  const bool have_active = BestCandidate(active_heap_, now, &active);
  if (!have_frozen && !have_active) {
    return false;
  }
  const Candidate* pick = nullptr;
  if (!have_active) {
    pick = &frozen;
  } else if (!have_frozen) {
    pick = &active;
  } else if (frozen.score != active.score) {
    pick = frozen.score > active.score ? &frozen : &active;
  } else {
    // Equal exact scores across the heaps: the seed scan keeps the first entry in hash-map
    // iteration order, i.e. the smaller label.
    pick = frozen.label < active.label ? &frozen : &active;
  }
  *victim = key_[pick->slot];
  return true;
}

// --- Residency. ---

uint32_t ExpertCache::AllocSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const uint32_t slot = static_cast<uint32_t>(key_.size());
  key_.push_back(0);
  bytes_.push_back(0);
  ready_at_.push_back(0.0);
  last_access_.push_back(0.0);
  freq_.push_back(0.0);
  prob_.push_back(0.0);
  epoch_.push_back(0);
  pin_count_.push_back(0);
  transfer_tag_.push_back(0);
  occupied_flag_.push_back(0);
  prefetch_pending_.push_back(0);
  reduced_precision_.push_back(0);
  gen_.push_back(0);
  freq_gen_.push_back(0);
  return slot;
}

void ExpertCache::InsertResident(const CacheEntry& entry) {
  const uint32_t slot = AllocSlot();
  key_[slot] = entry.key;
  bytes_[slot] = entry.bytes;
  ready_at_[slot] = entry.ready_at;
  last_access_[slot] = entry.last_access;
  freq_[slot] = entry.frequency;
  prob_[slot] = entry.probability;
  epoch_[slot] = decay_epoch_;
  pin_count_[slot] = entry.pin_count;
  transfer_tag_[slot] = entry.transfer_tag;
  occupied_flag_[slot] = 1;
  prefetch_pending_[slot] = entry.prefetch_pending ? 1 : 0;
  reduced_precision_[slot] = entry.reduced_precision ? 1 : 0;
  ++gen_[slot];
  ++freq_gen_[slot];
  TableInsert(entry.key, slot);
  const IterationOrderOracle::InsertResult order = oracle_.Insert(entry.key, slot);
  used_bytes_ += entry.bytes;
  ++occupied_;
  if (order.labels_invalidated) {
    RebuildHeaps();  // Covers the fresh slot too.
  } else if (pin_count_[slot] == 0) {
    PushHeapNode(slot);
  }
  if (uses_frequency_ && freq_[slot] > kEvictionFrequencyFloor) {
    ScheduleCrossing(slot);
  }
}

CacheEntry ExpertCache::RemoveResident(uint64_t key) {
  const uint32_t slot = LookupSlot(key);
  FMOE_CHECK(slot != kNilSlot);
  MaterializeSlot(slot);
  const CacheEntry out = MaterializedEntry(slot);
  TableErase(key);
  oracle_.Erase(key, slot);
  used_bytes_ -= bytes_[slot];
  --occupied_;
  occupied_flag_[slot] = 0;
  ++gen_[slot];       // Invalidate heap nodes.
  ++freq_gen_[slot];  // Invalidate crossing schedule entries (slot recycles).
  free_slots_.push_back(slot);
  return out;
}

// --- Public interface. ---

EntryRef ExpertCache::Find(uint64_t key) {
  const uint32_t slot = LookupSlot(key);
  return slot == kNilSlot ? EntryRef() : EntryRef(this, slot);
}

ConstEntryRef ExpertCache::Find(uint64_t key) const {
  const uint32_t slot = LookupSlot(key);
  return slot == kNilSlot ? ConstEntryRef() : ConstEntryRef(this, slot);
}

bool ExpertCache::Insert(const CacheEntry& entry, double now, std::vector<CacheEntry>* evicted) {
  if (LookupSlot(entry.key) != kNilSlot) {
    return false;
  }
  if (entry.bytes > effective_capacity_bytes()) {
    ++stats_.rejected_insertions;
    return false;
  }
  // Tentatively evict until the entry fits; roll back if we run out of victims. The oracle
  // map replays the erase/emplace sequence of the seed implementation exactly, so iteration
  // order — and with it every future tie-break — evolves identically.
  victims_scratch_.clear();
  while (used_bytes_ + entry.bytes > effective_capacity_bytes()) {
    uint64_t victim_key = 0;
    if (!PickVictim(now, &victim_key)) {
      for (const CacheEntry& v : victims_scratch_) {  // Roll back: victims go home.
        InsertResident(v);
      }
      ++stats_.rejected_insertions;
      return false;
    }
    victims_scratch_.push_back(RemoveResident(victim_key));
  }
  InsertResident(entry);
  ++stats_.insertions;
  stats_.evictions += victims_scratch_.size();
  if (evicted != nullptr) {
    evicted->assign(victims_scratch_.begin(), victims_scratch_.end());
  }
  if (stall_observer_) {
    for (const CacheEntry& victim : victims_scratch_) {
      stall_observer_->OnEvicted(victim.key);
    }
  }
  if (trace_) {
    for (const CacheEntry& victim : victims_scratch_) {
      trace_->OnEvicted(victim.key);
      trace_->Instant(trace_track_, "evict", "cache", now,
                      {TraceArg::Uint("key", victim.key), TraceArg::Uint("bytes", victim.bytes),
                       TraceArg::Uint("for_key", entry.key)});
    }
    trace_->Instant(trace_track_, "insert", "cache", now,
                    {TraceArg::Uint("key", entry.key), TraceArg::Uint("bytes", entry.bytes),
                     TraceArg::Int("prefetch", entry.prefetch_pending ? 1 : 0)});
    trace_->Counter(trace_track_, "cache.used_bytes", now, static_cast<double>(used_bytes_));
    trace_->Counter(trace_track_, "cache.entries", now, static_cast<double>(occupied_));
  }
  return true;
}

bool ExpertCache::SetReservation(uint64_t bytes, double now, std::vector<CacheEntry>* evicted) {
  reserved_bytes_ = bytes;
  victims_scratch_.clear();
  while (used_bytes_ > effective_capacity_bytes()) {
    uint64_t victim_key = 0;
    if (!PickVictim(now, &victim_key)) {
      break;  // Only pinned entries left; best effort until pins release.
    }
    victims_scratch_.push_back(RemoveResident(victim_key));
  }
  stats_.evictions += victims_scratch_.size();
  if (evicted != nullptr) {
    evicted->assign(victims_scratch_.begin(), victims_scratch_.end());
  }
  if (stall_observer_) {
    for (const CacheEntry& victim : victims_scratch_) {
      stall_observer_->OnEvicted(victim.key);
    }
  }
  if (trace_) {
    for (const CacheEntry& victim : victims_scratch_) {
      trace_->OnEvicted(victim.key);
      trace_->Instant(trace_track_, "evict", "cache", now,
                      {TraceArg::Uint("key", victim.key), TraceArg::Uint("bytes", victim.bytes),
                       TraceArg::Uint("reserved", bytes)});
    }
    if (!victims_scratch_.empty()) {
      trace_->Counter(trace_track_, "cache.used_bytes", now, static_cast<double>(used_bytes_));
      trace_->Counter(trace_track_, "cache.entries", now, static_cast<double>(occupied_));
    }
  }
  return used_bytes_ <= effective_capacity_bytes();
}

bool ExpertCache::Remove(uint64_t key, CacheEntry* removed) {
  const uint32_t slot = LookupSlot(key);
  if (slot == kNilSlot) {
    return false;
  }
  FMOE_CHECK_MSG(pin_count_[slot] == 0, "removing pinned expert " << key);
  const CacheEntry out = RemoveResident(key);
  if (removed != nullptr) {
    *removed = out;
  }
  if (stall_observer_) {
    stall_observer_->OnEvicted(key);
  }
  if (trace_) {
    // Policy-driven removal loses a prefetched copy the same way an eviction does.
    trace_->OnEvicted(key);
    const double now = trace_->now();
    trace_->Instant(trace_track_, "remove", "cache", now,
                    {TraceArg::Uint("key", key), TraceArg::Uint("bytes", out.bytes)});
    trace_->Counter(trace_track_, "cache.used_bytes", now, static_cast<double>(used_bytes_));
    trace_->Counter(trace_track_, "cache.entries", now, static_cast<double>(occupied_));
  }
  return true;
}

void ExpertCache::Touch(uint64_t key, double now) {
  const uint32_t slot = LookupSlot(key);
  FMOE_CHECK_MSG(slot != kNilSlot, "touching absent expert " << key);
  MaterializeSlot(slot);
  freq_[slot] += 1.0;
  last_access_[slot] = now;
  ++gen_[slot];
  ++freq_gen_[slot];  // The frequency trajectory changed: any scheduled crossing is stale.
  if (pin_count_[slot] == 0) {
    PushHeapNode(slot);
  }
  if (uses_frequency_) {
    ScheduleCrossing(slot);  // freq >= 1 after a touch, so the entry is active again.
  }
}

void ExpertCache::DecayFrequencies(double factor) {
  FMOE_CHECK(factor > 0.0 && factor <= 1.0);
  ++index_stats_.decay_calls;
  const bool factor_changed = uses_frequency_ && factor != sched_factor_;
  if (factor_changed || decay_epoch_ - base_epoch_ >= kRebaseEpochLimit ||
      decay_product_ < kRebaseProductFloor) {
    Rebase(factor);
  }
  ++decay_epoch_;
  epoch_factors_.push_back(factor);
  decay_product_ *= factor;
  inv_decay_ = 1.0 / decay_product_;
  // Fire due floor crossings: the scheduled entries' frequencies just decayed onto the
  // plateau, so their index keys migrate from the active heap to the frozen one.
  while (!crossings_.empty() && crossings_.begin()->first <= decay_epoch_) {
    const std::vector<std::pair<uint32_t, uint32_t>> due = std::move(crossings_.begin()->second);
    crossings_.erase(crossings_.begin());
    for (const auto& [slot, fgen] : due) {
      if (!occupied_flag_[slot] || freq_gen_[slot] != fgen) {
        continue;  // Touched, evicted, or recycled since scheduling.
      }
      ++index_stats_.crossing_fires;
      MaterializeSlot(slot);
      FMOE_CHECK(freq_[slot] <= kEvictionFrequencyFloor);
      ++gen_[slot];
      if (pin_count_[slot] == 0) {
        PushHeapNode(slot);
      }
      // Pinned entries get their (frozen) node pushed on the unpin instead.
    }
  }
}

void ExpertCache::SetProbability(uint64_t key, double probability) {
  const uint32_t slot = LookupSlot(key);
  if (slot == kNilSlot) {
    return;
  }
  prob_[slot] = probability;
  if (uses_probability_) {
    ++gen_[slot];
    if (pin_count_[slot] == 0) {
      PushHeapNode(slot);
    }
    // The frequency trajectory is untouched: crossing schedules stay valid.
  }
}

void ExpertCache::Pin(uint64_t key) {
  const uint32_t slot = LookupSlot(key);
  FMOE_CHECK_MSG(slot != kNilSlot, "pinning absent expert " << key);
  if (pin_count_[slot]++ == 0) {
    ++gen_[slot];  // Pinned entries are not eviction candidates; drop their heap nodes.
  }
}

void ExpertCache::Unpin(uint64_t key) {
  const uint32_t slot = LookupSlot(key);
  FMOE_CHECK_MSG(slot != kNilSlot, "unpinning absent expert " << key);
  FMOE_CHECK(pin_count_[slot] > 0);
  if (--pin_count_[slot] == 0) {
    ++gen_[slot];
    PushHeapNode(slot);  // Re-index at the entry's current (possibly now-frozen) state.
  }
}

std::vector<uint64_t> ExpertCache::EvictionOrder(double now) const {
  std::vector<std::pair<double, uint64_t>> scored;
  scored.reserve(occupied_);
  for (uint32_t s = 0; s < occupied_flag_.size(); ++s) {
    if (!occupied_flag_[s] || pin_count_[s] > 0) {
      continue;
    }
    scored.emplace_back(policy_->EvictionScore(MaterializedEntry(s), now), key_[s]);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  std::vector<uint64_t> keys;
  keys.reserve(scored.size());
  for (const auto& [score, key] : scored) {
    keys.push_back(key);
  }
  return keys;
}

std::vector<uint64_t> ExpertCache::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(occupied_);
  oracle_.AppendKeysInOrder(&keys);
  return keys;
}

}  // namespace fmoe
