#include "src/cache/reference_cache.h"

#include <algorithm>

#include "src/util/logging.h"

namespace fmoe {

ReferenceExpertCache::ReferenceExpertCache(uint64_t capacity_bytes,
                                           const EvictionPolicy* policy)
    : capacity_bytes_(capacity_bytes), policy_(policy) {
  FMOE_CHECK(policy != nullptr);
}

CacheEntry* ReferenceExpertCache::Find(uint64_t key) {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const CacheEntry* ReferenceExpertCache::Find(uint64_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ReferenceExpertCache::PickVictim(double now, uint64_t* victim) const {
  bool found = false;
  double best_score = 0.0;
  for (const auto& [key, entry] : entries_) {
    if (entry.pin_count > 0) {
      continue;
    }
    const double score = policy_->EvictionScore(entry, now);
    if (!found || score > best_score) {
      found = true;
      best_score = score;
      *victim = key;
    }
  }
  return found;
}

bool ReferenceExpertCache::Insert(const CacheEntry& entry, double now,
                                  std::vector<CacheEntry>* evicted) {
  if (entries_.contains(entry.key)) {
    return false;
  }
  if (entry.bytes > effective_capacity_bytes()) {
    ++stats_.rejected_insertions;
    return false;
  }
  // Tentatively evict until the entry fits; roll back if we run out of victims.
  std::vector<CacheEntry> victims;
  while (used_bytes_ + entry.bytes > effective_capacity_bytes()) {
    uint64_t victim_key = 0;
    if (!PickVictim(now, &victim_key)) {
      // Roll back: victims go home.
      for (const CacheEntry& v : victims) {
        entries_.emplace(v.key, v);
        used_bytes_ += v.bytes;
      }
      ++stats_.rejected_insertions;
      return false;
    }
    const auto it = entries_.find(victim_key);
    victims.push_back(it->second);
    used_bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
  entries_.emplace(entry.key, entry);
  used_bytes_ += entry.bytes;
  ++stats_.insertions;
  stats_.evictions += victims.size();
  if (evicted != nullptr) {
    *evicted = std::move(victims);
  }
  return true;
}

bool ReferenceExpertCache::SetReservation(uint64_t bytes, double now,
                                          std::vector<CacheEntry>* evicted) {
  reserved_bytes_ = bytes;
  std::vector<CacheEntry> victims;
  while (used_bytes_ > effective_capacity_bytes()) {
    uint64_t victim_key = 0;
    if (!PickVictim(now, &victim_key)) {
      break;  // Only pinned entries left; best effort until pins release.
    }
    const auto it = entries_.find(victim_key);
    victims.push_back(it->second);
    used_bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
  stats_.evictions += victims.size();
  if (evicted != nullptr) {
    *evicted = std::move(victims);
  }
  return used_bytes_ <= effective_capacity_bytes();
}

bool ReferenceExpertCache::Remove(uint64_t key, CacheEntry* removed) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  FMOE_CHECK_MSG(it->second.pin_count == 0, "removing pinned expert " << key);
  if (removed != nullptr) {
    *removed = it->second;
  }
  used_bytes_ -= it->second.bytes;
  entries_.erase(it);
  return true;
}

void ReferenceExpertCache::Touch(uint64_t key, double now) {
  CacheEntry* entry = Find(key);
  FMOE_CHECK_MSG(entry != nullptr, "touching absent expert " << key);
  entry->frequency += 1.0;
  entry->last_access = now;
}

void ReferenceExpertCache::DecayFrequencies(double factor) {
  FMOE_CHECK(factor > 0.0 && factor <= 1.0);
  for (auto& [key, entry] : entries_) {
    entry.frequency *= factor;
  }
}

void ReferenceExpertCache::SetProbability(uint64_t key, double probability) {
  CacheEntry* entry = Find(key);
  if (entry != nullptr) {
    entry->probability = probability;
  }
}

void ReferenceExpertCache::Pin(uint64_t key) {
  CacheEntry* entry = Find(key);
  FMOE_CHECK_MSG(entry != nullptr, "pinning absent expert " << key);
  ++entry->pin_count;
}

void ReferenceExpertCache::Unpin(uint64_t key) {
  CacheEntry* entry = Find(key);
  FMOE_CHECK_MSG(entry != nullptr, "unpinning absent expert " << key);
  FMOE_CHECK(entry->pin_count > 0);
  --entry->pin_count;
}

std::vector<uint64_t> ReferenceExpertCache::EvictionOrder(double now) const {
  std::vector<std::pair<double, uint64_t>> scored;
  scored.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    if (entry.pin_count > 0) {
      continue;
    }
    scored.emplace_back(policy_->EvictionScore(entry, now), key);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  std::vector<uint64_t> keys;
  keys.reserve(scored.size());
  for (const auto& [score, key] : scored) {
    keys.push_back(key);
  }
  return keys;
}

std::vector<uint64_t> ReferenceExpertCache::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

}  // namespace fmoe
