// Byte-budget expert cache (the GPU-resident working set of expert weights).
//
// The cache is purely mechanical: it tracks which experts are resident, how many bytes they
// occupy, and who to evict when a new expert must fit. All *policy* (what to prefetch, which
// probabilities to stamp on entries) lives in the offloading policies; all *timing* (when a
// transfer completes) lives in the memsim link — the cache stores the resulting ready_at.
#ifndef FMOE_SRC_CACHE_EXPERT_CACHE_H_
#define FMOE_SRC_CACHE_EXPERT_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/eviction_policy.h"

namespace fmoe {

struct CacheStats {
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t rejected_insertions = 0;  // Did not fit even after evicting all unpinned entries.
};

class ExpertCache {
 public:
  ExpertCache(uint64_t capacity_bytes, const EvictionPolicy* policy);

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t used_bytes() const { return used_bytes_; }
  size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

  bool Contains(uint64_t key) const { return entries_.contains(key); }
  // nullptr when absent. The pointer is invalidated by Insert/Remove.
  CacheEntry* Find(uint64_t key);
  const CacheEntry* Find(uint64_t key) const;

  // Inserts an entry (evicting by policy as needed). On success the new entry is resident and
  // `evicted` (if non-null) receives the victims, which the caller must clean up (free GPU
  // memory, cancel queued transfers). Returns false — with no state change — when the entry
  // cannot fit even after evicting every unpinned entry, or when the key is already resident.
  bool Insert(const CacheEntry& entry, double now, std::vector<CacheEntry>* evicted);

  // Removes an entry outright (e.g. policy-driven offload). Returns the removed entry.
  bool Remove(uint64_t key, CacheEntry* removed);

  // Records a cache hit: bumps frequency and last-access time.
  void Touch(uint64_t key, double now);

  // Stamps the activation probability from a freshly matched expert map (fMoE eviction input).
  void SetProbability(uint64_t key, double probability);

  void Pin(uint64_t key);
  void Unpin(uint64_t key);

  // Ages all hit frequencies by `factor` in (0, 1]: freq *= factor. Without aging, LFU-style
  // policies entrench the first working set forever; the engine decays once per iteration.
  void DecayFrequencies(double factor);

  // Keys ordered by descending eviction score (most evictable first); for tests/inspection.
  std::vector<uint64_t> EvictionOrder(double now) const;

  // All resident keys (unordered).
  std::vector<uint64_t> Keys() const;

 private:
  // Picks the unpinned entry with the highest eviction score; returns false if none.
  bool PickVictim(double now, uint64_t* victim) const;

  uint64_t capacity_bytes_;
  const EvictionPolicy* policy_;  // Not owned.
  uint64_t used_bytes_ = 0;
  std::unordered_map<uint64_t, CacheEntry> entries_;
  CacheStats stats_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_CACHE_EXPERT_CACHE_H_
