// Byte-budget expert cache (the GPU-resident working set of expert weights).
//
// The cache is purely mechanical: it tracks which experts are resident, how many bytes they
// occupy, and who to evict when a new expert must fit. All *policy* (what to prefetch, which
// probabilities to stamp on entries) lives in the offloading policies; all *timing* (when a
// transfer completes) lives in the memsim link — the cache stores the resulting ready_at.
//
// Storage is slot-based structure-of-arrays: every per-entry field lives in its own parallel
// array indexed by a dense slot handle, slots recycle through a free list, and an
// open-addressed hash table maps keys to slots. Victim selection is O(log n) amortized via
// two lazy-invalidation min-heaps of (primary, iteration-order label) index keys — see
// DESIGN.md for the full scheme (frozen/active split, epoch-based lazy decay, floor-crossing
// schedule, order oracle). The semantics, including tie-breaking under equal eviction scores
// and the exact floating-point trajectory of decayed frequencies, are bit-identical to the
// naive linear-scan implementation preserved in reference_cache.h.
#ifndef FMOE_SRC_CACHE_EXPERT_CACHE_H_
#define FMOE_SRC_CACHE_EXPERT_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/cache/eviction_policy.h"
#include "src/cache/order_oracle.h"

namespace fmoe {

class StallStateMachine;
class TraceRecorder;

struct CacheStats {
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t rejected_insertions = 0;  // Did not fit even after evicting all unpinned entries.
};

// Instrumentation for the indexed eviction structure. Tests and bench_cache use these to
// verify the steady-state complexity claims (no per-decay O(n) sweeps, bounded heap growth)
// without timing anything.
struct CacheIndexStats {
  uint64_t heap_pushes = 0;
  uint64_t heap_pops = 0;       // Stale nodes discarded + candidates examined during picks.
  uint64_t heap_rebuilds = 0;   // Compactions and rebuilds forced by relabels/rebases.
  uint64_t rebases = 0;         // Epoch-log folds (factor change, horizon, underflow guard).
  uint64_t decay_calls = 0;
  uint64_t crossing_fires = 0;  // Active entries frozen at their precomputed floor epoch.
  uint64_t victim_picks = 0;
};

class ExpertCache;

// Accessor handle for one resident entry (the SoA layout has no per-entry struct to point
// at). Invalidated by Insert/Remove, like the old CacheEntry pointer. Setters route
// score-relevant writes (probability) through the eviction index; transfer bookkeeping
// writes are index-neutral.
class EntryRef {
 public:
  EntryRef() = default;
  explicit operator bool() const { return cache_ != nullptr; }

  uint64_t key() const;
  uint64_t bytes() const;
  double ready_at() const;
  double last_access() const;
  double frequency() const;  // Fully materialized (all pending decay folded in).
  double probability() const;
  int pin_count() const;
  bool prefetch_pending() const;
  uint64_t transfer_tag() const;
  bool reduced_precision() const;

  void set_ready_at(double t);
  void set_prefetch_pending(bool pending);
  void set_transfer_tag(uint64_t tag);
  void set_probability(double probability);

 private:
  friend class ExpertCache;
  EntryRef(ExpertCache* cache, uint32_t slot) : cache_(cache), slot_(slot) {}
  ExpertCache* cache_ = nullptr;
  uint32_t slot_ = 0;
};

// Read-only variant of EntryRef for const cache access.
class ConstEntryRef {
 public:
  ConstEntryRef() = default;
  explicit operator bool() const { return cache_ != nullptr; }

  uint64_t key() const;
  uint64_t bytes() const;
  double ready_at() const;
  double last_access() const;
  double frequency() const;
  double probability() const;
  int pin_count() const;
  bool prefetch_pending() const;
  uint64_t transfer_tag() const;
  bool reduced_precision() const;

 private:
  friend class ExpertCache;
  ConstEntryRef(const ExpertCache* cache, uint32_t slot) : cache_(cache), slot_(slot) {}
  const ExpertCache* cache_ = nullptr;
  uint32_t slot_ = 0;
};

class ExpertCache {
 public:
  ExpertCache(uint64_t capacity_bytes, const EvictionPolicy* policy);

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t reserved_bytes() const { return reserved_bytes_; }
  // Bytes actually available to expert entries: capacity minus the external reservation
  // (KV-cache pressure). Saturates at zero. With no reservation this is capacity_bytes().
  uint64_t effective_capacity_bytes() const {
    return capacity_bytes_ > reserved_bytes_ ? capacity_bytes_ - reserved_bytes_ : 0;
  }
  size_t size() const { return occupied_; }
  const CacheStats& stats() const { return stats_; }
  const CacheIndexStats& index_stats() const { return index_stats_; }
  const IterationOrderOracle::Stats& order_stats() const { return oracle_.stats(); }

  // Attaches a trace recorder (pure observer: never influences eviction decisions).
  // Insert/evict/remove decisions become instants on `track` plus occupancy counters, and
  // evictions feed the recorder's evicted-before-use stall-attribution state.
  void set_trace(TraceRecorder* trace, int track) {
    trace_ = trace;
    trace_track_ = track;
  }

  // Attaches a live stall-attribution observer (the engine's control-signal state machine,
  // DESIGN.md §5j). Fed the same eviction events as the trace recorder, but on an
  // independent per-key machine, so trace classification marks are never consumed twice.
  void set_stall_observer(StallStateMachine* observer) { stall_observer_ = observer; }

  bool Contains(uint64_t key) const { return LookupSlot(key) != kNilSlot; }
  // Invalid (false) ref when absent. Invalidated by Insert/Remove.
  EntryRef Find(uint64_t key);
  ConstEntryRef Find(uint64_t key) const;

  // Inserts an entry (evicting by policy as needed). On success the new entry is resident and
  // `evicted` (if non-null) receives the victims, which the caller must clean up (free GPU
  // memory, cancel queued transfers). Returns false — with no state change — when the entry
  // cannot fit even after evicting every unpinned entry, or when the key is already resident.
  bool Insert(const CacheEntry& entry, double now, std::vector<CacheEntry>* evicted);

  // Removes an entry outright (e.g. policy-driven offload). Returns the removed entry.
  bool Remove(uint64_t key, CacheEntry* removed);

  // Reserves `bytes` of the byte budget for an external consumer (the growing KV cache),
  // shrinking the capacity Insert may fill. Entries are evicted by policy until the resident
  // set fits the new effective capacity; victims land in `evicted` (if non-null) for the
  // caller to clean up. Returns false when pinned entries keep used_bytes above the effective
  // capacity (the reservation is then best-effort until pins release).
  bool SetReservation(uint64_t bytes, double now, std::vector<CacheEntry>* evicted);

  // Records a cache hit: bumps frequency and last-access time.
  void Touch(uint64_t key, double now);

  // Stamps the activation probability from a freshly matched expert map (fMoE eviction input).
  void SetProbability(uint64_t key, double probability);

  void Pin(uint64_t key);
  void Unpin(uint64_t key);

  // Ages all hit frequencies by `factor` in (0, 1]: freq *= factor. Without aging, LFU-style
  // policies entrench the first working set forever; the engine decays once per iteration.
  // O(1) amortized: the factor is appended to an epoch log and folded into each entry's
  // stored frequency lazily, in application order, so materialized values are bitwise
  // identical to an eager per-entry sweep.
  void DecayFrequencies(double factor);

  // Keys ordered by descending eviction score (most evictable first); for tests/inspection.
  std::vector<uint64_t> EvictionOrder(double now) const;

  // All resident keys, in the legacy hash-map iteration order.
  std::vector<uint64_t> Keys() const;

 private:
  friend class EntryRef;
  friend class ConstEntryRef;

  static constexpr uint32_t kNilSlot = 0xffffffffu;
  // Rebase (fold the epoch log into every entry) at this log length or when the cumulative
  // decay product nears the subnormal range where normalized heap keys would lose precision.
  static constexpr uint64_t kRebaseEpochLimit = 4096;
  static constexpr double kRebaseProductFloor = 1e-250;

  struct HeapNode {
    double primary = 0.0;
    uint64_t label = 0;
    uint32_t slot = 0;
    uint32_t gen = 0;
  };
  struct NodeAfter {  // Min-heap comparator: lowest (primary, label) on top.
    bool operator()(const HeapNode& a, const HeapNode& b) const {
      if (a.primary != b.primary) {
        return a.primary > b.primary;
      }
      return a.label > b.label;
    }
  };
  struct Candidate {
    uint32_t slot = 0;
    uint64_t label = 0;
    double score = 0.0;
  };

  // --- Key -> slot open-addressed table (linear probing, backward-shift deletion). ---
  uint32_t LookupSlot(uint64_t key) const;
  void TableInsert(uint64_t key, uint32_t slot);
  void TableErase(uint64_t key);
  void TableGrow();

  // --- Lazy decay. ---
  // Folds the epoch log into the entry's stored frequency, factor by factor in application
  // order (bitwise identical to eager repeated multiplication).
  double MaterializedFrequency(uint32_t slot) const;
  void MaterializeSlot(uint32_t slot);
  CacheEntry MaterializedEntry(uint32_t slot) const;
  // Materializes everything, clears the epoch log, rebuilds heaps and crossing schedule
  // against the new normalization base and scheduling factor.
  void Rebase(double factor);

  // --- Eviction index. ---
  void PushHeapNode(uint32_t slot);       // Materializes, indexes, lazily compacts.
  void ScheduleCrossing(uint32_t slot);   // Precomputes the entry's floor-crossing epoch.
  void RebuildHeaps();
  double ExactScore(uint32_t slot, double now);
  bool BestCandidate(std::vector<HeapNode>& heap, double now, Candidate* out);
  bool PickVictim(double now, uint64_t* victim);

  // --- Residency. ---
  uint32_t AllocSlot();
  void InsertResident(const CacheEntry& entry);
  CacheEntry RemoveResident(uint64_t key);

  uint64_t capacity_bytes_;
  uint64_t reserved_bytes_ = 0;
  const EvictionPolicy* policy_;  // Not owned.
  TraceRecorder* trace_ = nullptr;  // Not owned; null = tracing disabled.
  StallStateMachine* stall_observer_ = nullptr;  // Not owned; null = no live signals.
  int trace_track_ = 0;
  bool uses_frequency_ = false;
  bool uses_probability_ = false;
  uint64_t used_bytes_ = 0;
  size_t occupied_ = 0;
  CacheStats stats_;
  CacheIndexStats index_stats_;

  // Parallel per-slot field arrays.
  std::vector<uint64_t> key_;
  std::vector<uint64_t> bytes_;
  std::vector<double> ready_at_;
  std::vector<double> last_access_;
  std::vector<double> freq_;
  std::vector<double> prob_;
  std::vector<uint64_t> epoch_;  // Absolute decay epoch freq_ is materialized at.
  std::vector<int> pin_count_;
  std::vector<uint64_t> transfer_tag_;
  std::vector<uint8_t> occupied_flag_;
  std::vector<uint8_t> prefetch_pending_;
  std::vector<uint8_t> reduced_precision_;
  std::vector<uint32_t> gen_;       // Bumped by any score-relevant event; heap node validity.
  std::vector<uint32_t> freq_gen_;  // Bumped when the frequency trajectory changes; schedule validity.
  std::vector<uint32_t> free_slots_;

  // Open-addressed key -> slot table (power-of-two capacity).
  std::vector<uint64_t> table_keys_;
  std::vector<uint32_t> table_slots_;
  size_t table_mask_ = 0;
  size_t table_used_ = 0;

  // Lazy decay state.
  uint64_t decay_epoch_ = 0;
  uint64_t base_epoch_ = 0;
  std::vector<double> epoch_factors_;  // Factor applied at epoch base_epoch_ + i + 1.
  double decay_product_ = 1.0;         // Product of epoch_factors_.
  double inv_decay_ = 1.0;
  double sched_factor_ = -1.0;  // Factor the crossing schedule assumes; < 0 = none seen yet.
  // Epoch -> (slot, freq_gen) of active entries whose frequency plateaus at that epoch.
  std::map<uint64_t, std::vector<std::pair<uint32_t, uint32_t>>> crossings_;

  // Lazy-invalidation eviction heaps (min by (primary, label); stale gens dropped on pop).
  std::vector<HeapNode> frozen_heap_;
  std::vector<HeapNode> active_heap_;
  std::vector<HeapNode> pick_scratch_;

  IterationOrderOracle oracle_;
  std::vector<CacheEntry> victims_scratch_;
};

// --- EntryRef / ConstEntryRef inline accessors (need the ExpertCache definition). ---

inline uint64_t EntryRef::key() const { return cache_->key_[slot_]; }
inline uint64_t EntryRef::bytes() const { return cache_->bytes_[slot_]; }
inline double EntryRef::ready_at() const { return cache_->ready_at_[slot_]; }
inline double EntryRef::last_access() const { return cache_->last_access_[slot_]; }
inline double EntryRef::frequency() const { return cache_->MaterializedFrequency(slot_); }
inline double EntryRef::probability() const { return cache_->prob_[slot_]; }
inline int EntryRef::pin_count() const { return cache_->pin_count_[slot_]; }
inline bool EntryRef::prefetch_pending() const {
  return cache_->prefetch_pending_[slot_] != 0;
}
inline uint64_t EntryRef::transfer_tag() const { return cache_->transfer_tag_[slot_]; }
inline bool EntryRef::reduced_precision() const {
  return cache_->reduced_precision_[slot_] != 0;
}
inline void EntryRef::set_ready_at(double t) { cache_->ready_at_[slot_] = t; }
inline void EntryRef::set_prefetch_pending(bool pending) {
  cache_->prefetch_pending_[slot_] = pending ? 1 : 0;
}
inline void EntryRef::set_transfer_tag(uint64_t tag) { cache_->transfer_tag_[slot_] = tag; }
inline void EntryRef::set_probability(double probability) {
  cache_->SetProbability(cache_->key_[slot_], probability);
}

inline uint64_t ConstEntryRef::key() const { return cache_->key_[slot_]; }
inline uint64_t ConstEntryRef::bytes() const { return cache_->bytes_[slot_]; }
inline double ConstEntryRef::ready_at() const { return cache_->ready_at_[slot_]; }
inline double ConstEntryRef::last_access() const { return cache_->last_access_[slot_]; }
inline double ConstEntryRef::frequency() const {
  return cache_->MaterializedFrequency(slot_);
}
inline double ConstEntryRef::probability() const { return cache_->prob_[slot_]; }
inline int ConstEntryRef::pin_count() const { return cache_->pin_count_[slot_]; }
inline bool ConstEntryRef::prefetch_pending() const {
  return cache_->prefetch_pending_[slot_] != 0;
}
inline uint64_t ConstEntryRef::transfer_tag() const { return cache_->transfer_tag_[slot_]; }
inline bool ConstEntryRef::reduced_precision() const {
  return cache_->reduced_precision_[slot_] != 0;
}

}  // namespace fmoe

#endif  // FMOE_SRC_CACHE_EXPERT_CACHE_H_
