// Naive linear-scan expert cache: the pre-index implementation, kept verbatim as an
// executable specification. The property tests drive it side by side with the indexed
// ExpertCache under random operation streams and demand identical victim sequences, byte
// accounting, and stats; bench_cache uses it as the "before" side of the victim-selection
// microbenchmark. Do not optimize this class — its O(n) scans and eager decay sweeps ARE the
// semantics the indexed cache must reproduce bit for bit.
#ifndef FMOE_SRC_CACHE_REFERENCE_CACHE_H_
#define FMOE_SRC_CACHE_REFERENCE_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/eviction_policy.h"
#include "src/cache/expert_cache.h"

namespace fmoe {

class ReferenceExpertCache {
 public:
  ReferenceExpertCache(uint64_t capacity_bytes, const EvictionPolicy* policy);

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t reserved_bytes() const { return reserved_bytes_; }
  uint64_t effective_capacity_bytes() const {
    return capacity_bytes_ > reserved_bytes_ ? capacity_bytes_ - reserved_bytes_ : 0;
  }
  size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

  bool Contains(uint64_t key) const { return entries_.contains(key); }
  CacheEntry* Find(uint64_t key);
  const CacheEntry* Find(uint64_t key) const;

  bool Insert(const CacheEntry& entry, double now, std::vector<CacheEntry>* evicted);
  bool Remove(uint64_t key, CacheEntry* removed);
  bool SetReservation(uint64_t bytes, double now, std::vector<CacheEntry>* evicted);
  void Touch(uint64_t key, double now);
  void SetProbability(uint64_t key, double probability);
  void Pin(uint64_t key);
  void Unpin(uint64_t key);
  void DecayFrequencies(double factor);
  std::vector<uint64_t> EvictionOrder(double now) const;
  std::vector<uint64_t> Keys() const;

 private:
  bool PickVictim(double now, uint64_t* victim) const;

  uint64_t capacity_bytes_;
  uint64_t reserved_bytes_ = 0;
  const EvictionPolicy* policy_;  // Not owned.
  uint64_t used_bytes_ = 0;
  std::unordered_map<uint64_t, CacheEntry> entries_;
  CacheStats stats_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_CACHE_REFERENCE_CACHE_H_
