// Eviction policies for the expert cache.
//
// The paper compares three (§6.5, Fig. 12b): LRU (Mixtral-Offloading), LFU (MoE-Infinity), and
// fMoE's probability-weighted LFU with eviction priority 1 / (p_{l,j} * freq_{l,j}). A policy
// assigns each cache entry an eviction score; the cache evicts the unpinned entry with the
// highest score first.
#ifndef FMOE_SRC_CACHE_EVICTION_POLICY_H_
#define FMOE_SRC_CACHE_EVICTION_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

namespace fmoe {

// Bookkeeping the cache maintains per resident expert.
struct CacheEntry {
  uint64_t key = 0;        // Flat expert index.
  uint64_t bytes = 0;
  double ready_at = 0.0;   // Simulated time its host->device transfer completes.
  double last_access = 0.0;
  double frequency = 0.0;  // Aged cache-hit count (LFU signal); decays once per iteration.
  double probability = 0.0;  // Activation probability from the matched expert map (fMoE).
  int pin_count = 0;       // Pinned entries (in use / in flight) are not evictable.
  bool prefetch_pending = true;  // True until the transfer has started on the link.
  uint64_t transfer_tag = 0;     // Link-transfer tag of the pending prefetch (0 = none).
  bool reduced_precision = false;  // Weights resident at reduced precision (lossy extension).
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual std::string name() const = 0;
  // Higher score = evicted sooner.
  virtual double EvictionScore(const CacheEntry& entry, double now) const = 0;
};

// Classic least-recently-used: evict the oldest access.
class LruEvictionPolicy : public EvictionPolicy {
 public:
  std::string name() const override { return "LRU"; }
  double EvictionScore(const CacheEntry& entry, double now) const override;
};

// Least-frequently-used (MoE-Infinity): evict the lowest hit count.
class LfuEvictionPolicy : public EvictionPolicy {
 public:
  std::string name() const override { return "LFU"; }
  double EvictionScore(const CacheEntry& entry, double now) const override;
};

// fMoE: PRI^evict = 1 / (p * freq); low-probability and rarely-hit experts go first.
class PriorityLfuEvictionPolicy : public EvictionPolicy {
 public:
  std::string name() const override { return "fMoE-PriorityLFU"; }
  double EvictionScore(const CacheEntry& entry, double now) const override;
};

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(const std::string& name);

}  // namespace fmoe

#endif  // FMOE_SRC_CACHE_EVICTION_POLICY_H_
