// Eviction policies for the expert cache.
//
// The paper compares three (§6.5, Fig. 12b): LRU (Mixtral-Offloading), LFU (MoE-Infinity), and
// fMoE's probability-weighted LFU with eviction priority 1 / (p_{l,j} * freq_{l,j}). A policy
// assigns each cache entry an eviction score; the cache evicts the unpinned entry with the
// highest score first.
#ifndef FMOE_SRC_CACHE_EVICTION_POLICY_H_
#define FMOE_SRC_CACHE_EVICTION_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

namespace fmoe {

// Floors that keep eviction scores finite for never-hit / zero-probability entries while
// preserving ordering (a never-hit entry is always a better victim than a hit one). Shared
// with the cache's indexed eviction structure, which needs the frequency floor to tell
// decay-sensitive entries from plateaued ones.
inline constexpr double kEvictionFrequencyFloor = 0.5;
inline constexpr double kEvictionProbabilityFloor = 1e-4;

// Bookkeeping the cache maintains per resident expert.
struct CacheEntry {
  uint64_t key = 0;        // Flat expert index.
  uint64_t bytes = 0;
  double ready_at = 0.0;   // Simulated time its host->device transfer completes.
  double last_access = 0.0;
  double frequency = 0.0;  // Aged cache-hit count (LFU signal); decays once per iteration.
  double probability = 0.0;  // Activation probability from the matched expert map (fMoE).
  int pin_count = 0;       // Pinned entries (in use / in flight) are not evictable.
  bool prefetch_pending = true;  // True until the transfer has started on the link.
  uint64_t transfer_tag = 0;     // Link-transfer tag of the pending prefetch (0 = none).
  bool reduced_precision = false;  // Weights resident at reduced precision (lossy extension).
};

// Comparable key the expert cache's lazy eviction heaps order entries by. `primary` sorts
// ascending — a *lower* primary means a *higher* eviction score, i.e. evicted sooner — so the
// best victim sits at the top of a min-heap. `frozen` marks keys that are invariant under
// uniform frequency decay (last-access times, sub-floor plateau scores); non-frozen keys are
// expressed in decay-normalized units (frequency divided by the cumulative decay product), so
// uniform aging never reorders them and the heap needs no per-decay maintenance.
struct EvictionIndexKey {
  double primary = 0.0;
  bool frozen = true;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual std::string name() const = 0;
  // Higher score = evicted sooner.
  virtual double EvictionScore(const CacheEntry& entry, double now) const = 0;
  // Index key for the cache's eviction heaps. `entry.frequency` must be fully materialized
  // (all pending decay folded in); `inv_decay` is the reciprocal of the cumulative decay
  // product since the cache's current normalization base.
  virtual EvictionIndexKey IndexKey(const CacheEntry& entry, double inv_decay) const = 0;
  // Whether EvictionScore depends on the entry's frequency / probability. The cache uses
  // these to decide which mutations must re-index an entry.
  virtual bool uses_frequency() const { return false; }
  virtual bool uses_probability() const { return false; }
};

// Classic least-recently-used: evict the oldest access.
class LruEvictionPolicy : public EvictionPolicy {
 public:
  std::string name() const override { return "LRU"; }
  double EvictionScore(const CacheEntry& entry, double now) const override;
  EvictionIndexKey IndexKey(const CacheEntry& entry, double inv_decay) const override;
};

// Least-frequently-used (MoE-Infinity): evict the lowest hit count.
class LfuEvictionPolicy : public EvictionPolicy {
 public:
  std::string name() const override { return "LFU"; }
  double EvictionScore(const CacheEntry& entry, double now) const override;
  EvictionIndexKey IndexKey(const CacheEntry& entry, double inv_decay) const override;
  bool uses_frequency() const override { return true; }
};

// fMoE: PRI^evict = 1 / (p * freq); low-probability and rarely-hit experts go first.
class PriorityLfuEvictionPolicy : public EvictionPolicy {
 public:
  std::string name() const override { return "fMoE-PriorityLFU"; }
  double EvictionScore(const CacheEntry& entry, double now) const override;
  EvictionIndexKey IndexKey(const CacheEntry& entry, double inv_decay) const override;
  bool uses_frequency() const override { return true; }
  bool uses_probability() const override { return true; }
};

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(const std::string& name);

}  // namespace fmoe

#endif  // FMOE_SRC_CACHE_EVICTION_POLICY_H_
