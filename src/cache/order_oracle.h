// Iteration-order oracle for the SoA expert cache.
//
// The seed ExpertCache stored entries in a std::unordered_map and broke exact eviction-score
// ties by whichever entry the map's iteration happened to visit first. That order is an
// artifact of the hash table's internals (bucket-head insertion, rehash history), but the
// golden report JSONs pin it: score ties decide victims constantly, so a faithful index must
// reproduce the map's iteration order bit for bit.
//
// Rather than simulating the standard library's hash table, the oracle keeps a *real*
// std::unordered_map<key, slot> fed the exact same insert/erase sequence the seed cache would
// have issued, and mirrors its iteration order into an explicit doubly-linked list of slots
// with order labels (64-bit keys that compare like list positions). The successor of a newly
// inserted key is predicted in O(1) from the map itself — libstdc++ inserts at the head of
// the key's bucket, or at the global head when the bucket was empty — and every prediction is
// verified after the fact. Any surprise (a rehash, or a library whose insertion point
// differs) falls back to rebuilding the mirror by iterating the real map, which is exact by
// construction on every implementation. Victim selection therefore never scans the map; it
// compares labels.
#ifndef FMOE_SRC_CACHE_ORDER_ORACLE_H_
#define FMOE_SRC_CACHE_ORDER_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fmoe {

class IterationOrderOracle {
 public:
  struct InsertResult {
    uint64_t label = 0;
    // True when the insert relabeled the list (midpoint exhaustion, rehash rebuild): every
    // label handed out earlier is stale and anything caching labels must be rebuilt.
    bool labels_invalidated = false;
  };

  struct Stats {
    uint64_t rebuilds = 0;  // Mirror rebuilt by iterating the real map (rehash / mispredict).
    uint64_t relabels = 0;  // Labels reassigned after midpoint exhaustion.
  };

  // Key must not be present. `slot` is the caller's dense handle for the key.
  InsertResult Insert(uint64_t key, uint32_t slot);

  // Key must be present and mapped to `slot`.
  void Erase(uint64_t key, uint32_t slot);

  // Label of a resident slot; labels ascend along the map's iteration order.
  uint64_t label(uint32_t slot) const { return labels_[slot]; }

  size_t size() const { return map_.size(); }
  const Stats& stats() const { return stats_; }

  // Appends all resident keys in the map's iteration order.
  void AppendKeysInOrder(std::vector<uint64_t>* out) const;

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr uint64_t kLabelBase = 1ull << 62;
  static constexpr uint64_t kLabelGap = 1ull << 20;

  void EnsureSlot(uint32_t slot);
  // Links `slot` immediately before `succ` (kNil = append at tail). Returns true when the
  // list had to be relabeled to make room.
  bool LinkBefore(uint32_t slot, uint32_t succ);
  void Unlink(uint32_t slot);
  void Relabel();
  void RebuildFromMap();

  std::unordered_map<uint64_t, uint32_t> map_;
  // Slot-indexed mirror of the map's iteration order.
  std::vector<uint32_t> next_;
  std::vector<uint32_t> prev_;
  std::vector<uint64_t> labels_;
  std::vector<uint64_t> key_of_;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  Stats stats_;
};

}  // namespace fmoe

#endif  // FMOE_SRC_CACHE_ORDER_ORACLE_H_
