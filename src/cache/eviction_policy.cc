#include "src/cache/eviction_policy.h"

#include <algorithm>

#include "src/util/logging.h"

namespace fmoe {
namespace {

// Floors that keep the scores finite for never-hit / zero-probability entries while
// preserving ordering (a never-hit entry is always a better victim than a hit one).
constexpr double kMinFrequency = 0.5;
constexpr double kMinProbability = 1e-4;

}  // namespace

double LruEvictionPolicy::EvictionScore(const CacheEntry& entry, double now) const {
  // Older last access => larger (now - last_access) => evicted first.
  return now - entry.last_access;
}

double LfuEvictionPolicy::EvictionScore(const CacheEntry& entry, double /*now*/) const {
  const double freq = std::max(entry.frequency, kMinFrequency);
  return 1.0 / freq;
}

double PriorityLfuEvictionPolicy::EvictionScore(const CacheEntry& entry, double /*now*/) const {
  const double freq = std::max(entry.frequency, kMinFrequency);
  const double prob = std::max(entry.probability, kMinProbability);
  return 1.0 / (prob * freq);
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(const std::string& name) {
  if (name == "LRU") {
    return std::make_unique<LruEvictionPolicy>();
  }
  if (name == "LFU") {
    return std::make_unique<LfuEvictionPolicy>();
  }
  if (name == "fMoE-PriorityLFU") {
    return std::make_unique<PriorityLfuEvictionPolicy>();
  }
  FMOE_CHECK_MSG(false, "unknown eviction policy: " << name);
}

}  // namespace fmoe
