#include "src/cache/eviction_policy.h"

#include <algorithm>

#include "src/util/logging.h"

namespace fmoe {
namespace {

constexpr double kMinFrequency = kEvictionFrequencyFloor;
constexpr double kMinProbability = kEvictionProbabilityFloor;

}  // namespace

double LruEvictionPolicy::EvictionScore(const CacheEntry& entry, double now) const {
  // Older last access => larger (now - last_access) => evicted first.
  return now - entry.last_access;
}

EvictionIndexKey LruEvictionPolicy::IndexKey(const CacheEntry& entry,
                                             double /*inv_decay*/) const {
  // now - last_access is monotone decreasing in last_access for any now, so the access time
  // itself is a frozen primary.
  return EvictionIndexKey{entry.last_access, /*frozen=*/true};
}

double LfuEvictionPolicy::EvictionScore(const CacheEntry& entry, double /*now*/) const {
  const double freq = std::max(entry.frequency, kMinFrequency);
  return 1.0 / freq;
}

EvictionIndexKey LfuEvictionPolicy::IndexKey(const CacheEntry& entry, double inv_decay) const {
  if (entry.frequency <= kMinFrequency) {
    // Sub-floor plateau: every such entry scores exactly 1/kMinFrequency, so the primary is a
    // constant and ties resolve purely by iteration-order label.
    return EvictionIndexKey{kMinFrequency, /*frozen=*/true};
  }
  return EvictionIndexKey{entry.frequency * inv_decay, /*frozen=*/false};
}

double PriorityLfuEvictionPolicy::EvictionScore(const CacheEntry& entry, double /*now*/) const {
  const double freq = std::max(entry.frequency, kMinFrequency);
  const double prob = std::max(entry.probability, kMinProbability);
  return 1.0 / (prob * freq);
}

EvictionIndexKey PriorityLfuEvictionPolicy::IndexKey(const CacheEntry& entry,
                                                     double inv_decay) const {
  const double prob = std::max(entry.probability, kMinProbability);
  if (entry.frequency <= kMinFrequency) {
    // Plateaued frequency: the score is a pure function of probability and stays put under
    // decay. prob * 0.5 is an exact halving, so equal probabilities tie exactly.
    return EvictionIndexKey{prob * kMinFrequency, /*frozen=*/true};
  }
  return EvictionIndexKey{prob * (entry.frequency * inv_decay), /*frozen=*/false};
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(const std::string& name) {
  if (name == "LRU") {
    return std::make_unique<LruEvictionPolicy>();
  }
  if (name == "LFU") {
    return std::make_unique<LfuEvictionPolicy>();
  }
  if (name == "fMoE-PriorityLFU") {
    return std::make_unique<PriorityLfuEvictionPolicy>();
  }
  FMOE_CHECK_MSG(false, "unknown eviction policy: " << name);
}

}  // namespace fmoe
