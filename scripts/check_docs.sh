#!/usr/bin/env bash
# Documentation consistency checks (CI `docs-check` job; runnable locally from anywhere).
#
# 1. Link check: every relative markdown link and bare file reference in *.md must point at a
#    file that exists in the tree (external http(s) links are not fetched).
# 2. Layout guard: every src/*/ module directory must be mentioned in README.md's
#    "Repository layout" section, so the module table cannot silently drift from the tree.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. Relative markdown links: [text](path) where path is not a URL or #anchor. ---------
for doc in *.md; do
  # Extract link targets; strip trailing #fragment.
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    path="${target%%#*}"
    [ -z "$path" ] && continue  # Pure in-page anchor.
    if [ ! -e "$path" ]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//' |
           grep -vE '^(https?|mailto):')
done

# --- 2. Backtick file references: `path/with/slash.ext` must exist. -----------------------
# Only plain existing-file-shaped refs are checked: paths with directory slashes and a file
# extension, no wildcards/placeholders/flags. `.*` globs (e.g. `tests/golden/*.json`) and
# command lines are skipped.
for doc in *.md; do
  case "$doc" in ISSUE.md) continue ;; esac  # Transient work item, module-relative paths.
  while IFS= read -r ref; do
    [ -z "$ref" ] && continue
    case "$ref" in
      *'*'*|*'<'*|*'$'*|*' '*|-*|http*|*..*) continue ;;
      /*) continue ;;  # Absolute paths point outside the repo (e.g. /root/related/ notes).
    esac
    # Trailing .* shorthand (`src/cache/expert_cache.*`) means "both .h and .cc".
    if [[ "$ref" == *.\* ]]; then
      stem="${ref%.*}"
      if ! compgen -G "${stem}.*" > /dev/null; then
        echo "BROKEN FILE REF: $doc -> $ref"
        fail=1
      fi
      continue
    fi
    if [ ! -e "$ref" ]; then
      echo "BROKEN FILE REF: $doc -> $ref"
      fail=1
    fi
  done < <(grep -oE '`[A-Za-z0-9_./*-]+/[A-Za-z0-9_.*-]+\.[A-Za-z*]+`' "$doc" |
           tr -d '`' | sort -u)
done

# --- 2b. Benchmark baseline guard: every BENCH_*.json at the repo root must be named in ---
# HACKING.md's baseline table, so committed baselines cannot drift undocumented.
for bench in BENCH_*.json; do
  [ -e "$bench" ] || continue  # No baselines committed (fresh checkout of a subset).
  if ! grep -qF "$bench" HACKING.md; then
    echo "UNDOCUMENTED BASELINE: $bench (add it to HACKING.md's baseline list)"
    fail=1
  fi
done

# --- 2c. Tool guard: every command-line binary built from src/tools/ must be named in -----
# HACKING.md, so shipping a tool without documenting its workflow fails CI.
while IFS= read -r tool; do
  [ -z "$tool" ] && continue
  if ! grep -qE "(^|[^A-Za-z0-9_])${tool}([^A-Za-z0-9_]|$)" HACKING.md; then
    echo "UNDOCUMENTED TOOL: $tool (built from src/tools/; document it in HACKING.md)"
    fail=1
  fi
done < <(grep -oE '^add_executable\([A-Za-z0-9_]+' src/tools/CMakeLists.txt |
         sed 's/^add_executable(//')

# --- 3. README layout guard: every src/<module>/ appears in the layout section. -----------
layout="$(awk '/^## Repository layout/{flag=1; next} /^## /{flag=0} flag' README.md)"
if [ -z "$layout" ]; then
  echo "README.md has no '## Repository layout' section"
  fail=1
fi
for dir in src/*/; do
  module="${dir%/}"
  if ! grep -qF "$module/" <<< "$layout"; then
    echo "MISSING FROM README LAYOUT: $module/ (add a row to 'Repository layout')"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
